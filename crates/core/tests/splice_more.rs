//! Further splice-engine behaviour: FASYNC source/destination symmetry,
//! video-device sinks, double-indirect files, and timer pacing accuracy.

use kdev::VideoDac;
use khw::{DiskProfile, SECTOR_SIZE};
use kproc::programs::{Scp, ScpMode};
use kproc::{
    FcntlCmd, Fd, OpenFlags, ProcState, Program, Sig, SpliceReq, Step, SyscallReq, SyscallRet,
    UserCtx,
};
use splice::objects::CharDev;
use splice::{Kernel, KernelBuilder};

const MB: u64 = 1024 * 1024;

#[test]
fn fasync_on_the_destination_also_makes_the_splice_async() {
    // §3: "The splice operates asynchronously if EITHER of the file
    // descriptors have the FASYNC flag enabled."
    struct P {
        st: u32,
        src: Option<Fd>,
        dst: Option<Fd>,
        ret_immediate: std::rc::Rc<std::cell::Cell<bool>>,
    }
    impl Program for P {
        fn step(&mut self, ctx: &mut UserCtx) -> Step {
            self.st += 1;
            match self.st {
                1 => Step::Syscall(SyscallReq::Open {
                    path: "/d0/src".into(),
                    flags: OpenFlags::RDONLY,
                }),
                2 => {
                    self.src = ctx.take_ret().as_fd();
                    Step::Syscall(SyscallReq::Open {
                        path: "/d1/dst".into(),
                        flags: OpenFlags::CREATE,
                    })
                }
                3 => {
                    self.dst = ctx.take_ret().as_fd();
                    Step::Syscall(SyscallReq::Sigaction {
                        sig: Sig::Io,
                        catch: true,
                    })
                }
                4 => {
                    ctx.take_ret();
                    // FASYNC on the DESTINATION, not the source.
                    Step::Syscall(SyscallReq::Fcntl {
                        fd: self.dst.unwrap(),
                        cmd: FcntlCmd::SetAsync(true),
                    })
                }
                5 => {
                    ctx.take_ret();
                    Step::splice(SpliceReq::new(self.src.unwrap(), self.dst.unwrap()))
                }
                6 => {
                    // Async splices return 0 immediately.
                    let ret = ctx.take_ret();
                    self.ret_immediate.set(ret == SyscallRet::Val(0));
                    if ctx.got_signal(Sig::Io) {
                        return Step::Exit(0);
                    }
                    Step::Syscall(SyscallReq::Pause)
                }
                _ => {
                    ctx.ret.take();
                    if ctx.got_signal(Sig::Io) {
                        Step::Exit(0)
                    } else {
                        self.st -= 1; // stay in the pause loop
                        Step::Syscall(SyscallReq::Pause)
                    }
                }
            }
        }
    }
    let mut k = KernelBuilder::paper_machine(DiskProfile::ramdisk()).build();
    k.setup_file("/d0/src", MB, 9);
    k.cold_cache();
    let flag = std::rc::Rc::new(std::cell::Cell::new(false));
    let pid = k.spawn(Box::new(P {
        st: 0,
        src: None,
        dst: None,
        ret_immediate: flag.clone(),
    }));
    let horizon = k.horizon(120);
    k.run_to_exit(horizon);
    assert!(matches!(k.procs().must(pid).state, ProcState::Exited(0)));
    assert!(
        flag.get(),
        "splice must return immediately with FASYNC on dst"
    );
    assert_eq!(k.verify_pattern_file("/d1/dst", MB, 9), None);
}

#[test]
fn file_to_video_dac_splice_displays_frames() {
    // §5.1 file→device splice with the always-ready video DAC: a single
    // EOF splice pushes the whole file through as frames.
    const FRAME: usize = 16 * 1024;
    struct P {
        st: u32,
        src: Option<Fd>,
        dev: Option<Fd>,
    }
    impl Program for P {
        fn step(&mut self, ctx: &mut UserCtx) -> Step {
            self.st += 1;
            match self.st {
                1 => Step::Syscall(SyscallReq::Open {
                    path: "/d0/video".into(),
                    flags: OpenFlags::RDONLY,
                }),
                2 => {
                    self.src = ctx.take_ret().as_fd();
                    Step::Syscall(SyscallReq::Open {
                        path: "/dev/video_dac".into(),
                        flags: OpenFlags::WRONLY,
                    })
                }
                3 => {
                    self.dev = ctx.take_ret().as_fd();
                    Step::splice(SpliceReq::new(self.src.unwrap(), self.dev.unwrap()))
                }
                4 => {
                    let ret = ctx.take_ret();
                    Step::Exit(if ret.as_val() == 8 * FRAME as i64 {
                        0
                    } else {
                        1
                    })
                }
                _ => Step::Exit(0),
            }
        }
    }
    let mut k = KernelBuilder::new()
        .disk("d0", DiskProfile::rz58())
        .video_dac("/dev/video_dac", VideoDac::new(FRAME))
        .build();
    k.setup_file("/d0/video", 8 * FRAME as u64, 4);
    k.cold_cache();
    let pid = k.spawn(Box::new(P {
        st: 0,
        src: None,
        dev: None,
    }));
    let horizon = k.horizon(60);
    k.run_to_exit(horizon);
    assert!(matches!(k.procs().must(pid).state, ProcState::Exited(0)));
    let CharDev::Video(v) = &k.cdevs()[0].dev else {
        panic!()
    };
    assert_eq!(v.frames(), 8);
}

#[test]
fn double_indirect_file_splices_correctly() {
    // A file deep enough to need double-indirect blocks on both ends.
    // 8 KB blocks hold 1024 pointers: single-indirect covers 12 + 1024
    // blocks ≈ 8.09 MB; go past it.
    let mut k = KernelBuilder::paper_machine(DiskProfile::rz58()).build();
    let len = 9 * MB;
    k.setup_file("/d0/src", len, 33);
    k.cold_cache();
    let pid = k.spawn(Box::new(Scp::with_options(
        "/d0/src",
        "/d1/dst",
        ScpMode::Sync,
        1,
    )));
    let horizon = k.horizon(600);
    k.run_to_exit(horizon);
    assert!(matches!(k.procs().must(pid).state, ProcState::Exited(0)));
    assert_eq!(k.verify_pattern_file("/d1/dst", len, 33), None);
    assert!(k.fsck_all().is_empty());
}

#[test]
fn interval_timer_fires_periodically_with_tick_quantisation() {
    // setitimer + pause loop: intervals must quantise to clock ticks and
    // stay periodic.
    struct P {
        st: u32,
        stamps: std::rc::Rc<std::cell::RefCell<Vec<ksim::SimTime>>>,
    }
    impl Program for P {
        fn step(&mut self, ctx: &mut UserCtx) -> Step {
            self.st += 1;
            match self.st {
                1 => Step::Syscall(SyscallReq::Sigaction {
                    sig: Sig::Alrm,
                    catch: true,
                }),
                2 => {
                    ctx.take_ret();
                    Step::Syscall(SyscallReq::SetItimer {
                        interval: ksim::Dur::from_ms(20),
                    })
                }
                n if n < 13 => {
                    ctx.ret.take();
                    if ctx.got_signal(Sig::Alrm) {
                        self.stamps.borrow_mut().push(ctx.now);
                    }
                    Step::Syscall(SyscallReq::Pause)
                }
                _ => Step::Exit(0),
            }
        }
    }
    let mut k: Kernel = KernelBuilder::new().build();
    let stamps = std::rc::Rc::new(std::cell::RefCell::new(Vec::new()));
    k.spawn(Box::new(P {
        st: 0,
        stamps: stamps.clone(),
    }));
    let horizon = k.horizon(30);
    k.run_to_exit(horizon);
    let stamps = stamps.borrow();
    assert!(stamps.len() >= 8, "timer fired {} times", stamps.len());
    let tick_ns = 1_000_000_000 / 256;
    let expect_ticks = ksim::Dur::from_ms(20).as_ns() / tick_ns; // 5 ticks = 19.53 ms
    for w in stamps.windows(2) {
        let gap = w[1].since(w[0]).as_ns();
        let ticks = (gap + tick_ns / 2) / tick_ns;
        assert_eq!(
            ticks, expect_ticks,
            "interval {gap} ns is not {expect_ticks} ticks"
        );
    }
}

#[test]
fn splice_last_partial_block_writes_full_device_block() {
    // A file ending mid-block: the splice writes the full final block to
    // the device (sector alignment) but the destination size must be the
    // exact byte length.
    let mut k = KernelBuilder::paper_machine(DiskProfile::ramdisk()).build();
    let len = 3 * 8192 + SECTOR_SIZE as u64 + 7; // odd tail
    k.setup_file("/d0/src", len, 5);
    k.cold_cache();
    let pid = k.spawn(Box::new(Scp::with_options(
        "/d0/src",
        "/d1/dst",
        ScpMode::Sync,
        1,
    )));
    let horizon = k.horizon(120);
    k.run_to_exit(horizon);
    assert!(matches!(k.procs().must(pid).state, ProcState::Exited(0)));
    assert_eq!(k.file_size("/d1/dst"), len);
    assert_eq!(k.verify_pattern_file("/d1/dst", len, 5), None);
}
