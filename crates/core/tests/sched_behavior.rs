//! Scheduler and CPU-engine behaviour at the kernel level: fairness,
//! wakeup preemption, priority decay, and the softwork budget.

use khw::DiskProfile;
use kproc::programs::{Cp, CpuBound, Scp};
use kproc::Pid;
use ksim::Dur;
use splice::{Kernel, KernelBuilder};

fn elapsed_of(k: &Kernel, pid: Pid) -> f64 {
    let p = k.procs().must(pid);
    p.ended
        .expect("process finished")
        .since(p.started)
        .as_secs_f64()
}

#[test]
fn two_cpu_bound_processes_share_fairly() {
    let mut k = KernelBuilder::new().build();
    let a = k.spawn(Box::new(CpuBound::new(1_000, Dur::from_ms(1))));
    let b = k.spawn(Box::new(CpuBound::new(1_000, Dur::from_ms(1))));
    let horizon = k.horizon(60);
    k.run_to_exit(horizon);
    let (ta, tb) = (elapsed_of(&k, a), elapsed_of(&k, b));
    // Both need 1 s of CPU; sharing one CPU they finish around 2 s,
    // within a quantum of each other.
    assert!((ta - tb).abs() < 0.1, "unfair split: {ta:.3} vs {tb:.3}");
    assert!(ta > 1.9 && ta < 2.2, "elapsed {ta:.3}");
    // Quantum preemptions happened.
    assert!(k.procs().must(a).acct.icsw > 10);
}

#[test]
fn single_process_pays_only_clock_overhead() {
    let mut k = KernelBuilder::new().build();
    let a = k.spawn(Box::new(CpuBound::new(2_000, Dur::from_ms(1))));
    let horizon = k.horizon(60);
    k.run_to_exit(horizon);
    let t = elapsed_of(&k, a);
    // 2 s of work; hardclock at HZ=256 costs 12 us per 3.9 ms ≈ 0.3 %.
    assert!(t > 2.0 && t < 2.02, "elapsed {t:.4}");
}

#[test]
fn io_bound_process_preempts_a_fresh_cpu_hog() {
    // An I/O-bound process with low decayed CPU usage should make
    // progress at its natural I/O rate even next to a CPU hog.
    let mut k = KernelBuilder::paper_machine(DiskProfile::rz58()).build();
    k.setup_file("/d0/src", 1024 * 1024, 1);
    k.cold_cache();
    let cp = k.spawn(Box::new(Cp::new("/d0/src", "/d1/dst")));
    k.spawn(Box::new(CpuBound::new(20_000, Dur::from_ms(1))));
    let horizon = k.horizon(120);
    k.run_until_exit_of(cp, horizon);
    let t = elapsed_of(&k, cp);
    // Alone the copy takes ~0.5 s; with the hog it must still finish in a
    // few seconds (preemption working), not at one block per quantum
    // (which would be ~128 * 40 ms ≈ 5+ s of pure queueing delays on
    // reads alone).
    assert!(t < 4.0, "cp starved: {t:.2}s");
    assert!(k.metrics().sched.preemptions > 0, "no wakeup preemption");
}

#[test]
fn splice_defers_to_user_demand_but_uses_idle_cpu() {
    // Contended: splice throughput collapses to roughly the budget share.
    let contended = {
        let mut k = KernelBuilder::paper_machine(DiskProfile::ramdisk()).build();
        k.setup_file("/d0/src", 2 * 1024 * 1024, 2);
        k.cold_cache();
        let scp = k.spawn(Box::new(Scp::new("/d0/src", "/d1/dst")));
        k.spawn(Box::new(CpuBound::new(30_000, Dur::from_ms(1))));
        let horizon = k.horizon(600);
        k.run_until_exit_of(scp, horizon);
        elapsed_of(&k, scp)
    };
    // Idle: the same splice gets the whole CPU.
    let idle = {
        let mut k = KernelBuilder::paper_machine(DiskProfile::ramdisk()).build();
        k.setup_file("/d0/src", 2 * 1024 * 1024, 2);
        k.cold_cache();
        let scp = k.spawn(Box::new(Scp::new("/d0/src", "/d1/dst")));
        let horizon = k.horizon(600);
        k.run_until_exit_of(scp, horizon);
        elapsed_of(&k, scp)
    };
    assert!(
        contended > idle * 2.5,
        "budgeted splice must slow under contention: idle {idle:.2}s vs contended {contended:.2}s"
    );
}

#[test]
fn interrupt_load_extends_user_chunks() {
    // A CPU-bound process beside a SCSI copy finishes late by roughly the
    // interrupt + pseudo-DMA time the copy generated.
    let mut k = KernelBuilder::paper_machine(DiskProfile::rz58()).build();
    k.setup_file("/d0/src", 2 * 1024 * 1024, 3);
    k.cold_cache();
    let test = k.spawn(Box::new(CpuBound::new(3_000, Dur::from_ms(1))));
    k.spawn(Box::new(Scp::new("/d0/src", "/d1/dst")));
    let horizon = k.horizon(120);
    k.run_until_exit_of(test, horizon);
    let t = elapsed_of(&k, test);
    assert!(t > 3.05, "interrupt load must be visible: {t:.3}");
    assert!(t < 4.5, "but bounded: {t:.3}");
}

#[test]
fn accounting_adds_up() {
    let mut k = KernelBuilder::paper_machine(DiskProfile::ramdisk()).build();
    k.setup_file("/d0/src", 1024 * 1024, 4);
    k.cold_cache();
    let cp = k.spawn(Box::new(Cp::new("/d0/src", "/d1/dst")));
    let horizon = k.horizon(120);
    k.run_to_exit(horizon);
    let acct = k.procs().must(cp).acct;
    // cp's time is almost all system time (copies run in the kernel).
    assert!(acct.sys_time > Dur::from_ms(100));
    assert!(acct.user_time < acct.sys_time);
    assert!(acct.syscalls >= 128 * 2, "a read+write per block");
    // And the wall clock covers both.
    let t = elapsed_of(&k, cp);
    assert!(t >= (acct.sys_time + acct.user_time).as_secs_f64());
}

#[test]
fn update_daemon_flushes_delayed_writes() {
    // A partial (delayed) write with no fsync becomes durable once the
    // update daemon has run.
    let mut k = KernelBuilder::new()
        .disk("d", DiskProfile::ramdisk())
        .tune(|cfg| cfg.update_interval = Some(Dur::from_secs(5)))
        .build();
    // Create the file durably first (Writer fsyncs)…
    let w = k.spawn(Box::new(kproc::programs::Writer::new(
        "/d/f", 1000, 1000, 7,
    )));
    let horizon = k.horizon(60);
    k.run_until_exit_of(w, horizon);
    // …then dirty a block through a program that never fsyncs.

    struct DirtyWrite {
        st: u32,
    }
    impl kproc::Program for DirtyWrite {
        fn step(&mut self, ctx: &mut kproc::UserCtx) -> kproc::Step {
            use kproc::{OpenFlags, Step, SyscallReq};
            // Open (no trunc), partial write, exit: leaves a delayed
            // write behind, with no fsync to flush it.
            self.st += 1;
            match self.st {
                1 => Step::Syscall(SyscallReq::Open {
                    path: "/d/f".into(),
                    flags: OpenFlags {
                        read: false,
                        write: true,
                        create: false,
                        trunc: false,
                    },
                }),
                2 => {
                    let fd = ctx.take_ret().as_fd().unwrap();
                    Step::Syscall(SyscallReq::Write {
                        fd,
                        data: vec![0xEE; 100],
                    })
                }
                3 => {
                    ctx.take_ret();
                    Step::Exit(0)
                }
                _ => Step::Exit(0),
            }
        }
    }
    let d = k.spawn(Box::new(DirtyWrite { st: 0 }));
    k.run_until_exit_of(d, k.horizon(60));
    // Run past one update period without any process demanding flushes.
    let target = k.horizon(12);
    k.run_until(target, |_| false);
    assert!(
        k.metrics().update_flushes > 0,
        "update daemon never flushed"
    );
    // The partial write is now on the medium.
    let got = k.dump_file("/d/f");
    assert_eq!(&got[..100], &[0xEE; 100]);
}
