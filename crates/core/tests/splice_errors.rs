//! splice(2) argument validation and edge cases.

use khw::DiskProfile;
use kproc::{
    Errno, Fd, OpenFlags, ProcState, Program, SpliceLen, SpliceReq, Step, SyscallReq, SyscallRet,
    UserCtx,
};
use splice::{Kernel, KernelBuilder};

/// Opens two paths and splices between them once, recording the result.
struct SpliceProbe {
    src: String,
    src_flags: OpenFlags,
    dst: String,
    dst_flags: OpenFlags,
    len: SpliceLen,
    /// Seek the source here before splicing.
    src_seek: Option<u64>,
    st: u32,
    src_fd: Option<Fd>,
    dst_fd: Option<Fd>,
    result: std::rc::Rc<std::cell::RefCell<Option<SyscallRet>>>,
}

impl SpliceProbe {
    fn new(
        src: &str,
        dst: &str,
        len: SpliceLen,
    ) -> (
        SpliceProbe,
        std::rc::Rc<std::cell::RefCell<Option<SyscallRet>>>,
    ) {
        let result = std::rc::Rc::new(std::cell::RefCell::new(None));
        (
            SpliceProbe {
                src: src.into(),
                src_flags: OpenFlags::RDONLY,
                dst: dst.into(),
                dst_flags: OpenFlags::CREATE,
                len,
                src_seek: None,
                st: 0,
                src_fd: None,
                dst_fd: None,
                result: result.clone(),
            },
            result,
        )
    }
}

impl Program for SpliceProbe {
    fn step(&mut self, ctx: &mut UserCtx) -> Step {
        match self.st {
            0 => {
                self.st = 1;
                Step::Syscall(SyscallReq::Open {
                    path: self.src.clone(),
                    flags: self.src_flags,
                })
            }
            1 => {
                self.src_fd = ctx.take_ret().as_fd();
                if self.src_fd.is_none() {
                    return Step::Exit(2);
                }
                self.st = 2;
                Step::Syscall(SyscallReq::Open {
                    path: self.dst.clone(),
                    flags: self.dst_flags,
                })
            }
            2 => {
                self.dst_fd = ctx.take_ret().as_fd();
                if self.dst_fd.is_none() {
                    return Step::Exit(2);
                }
                if let Some(pos) = self.src_seek.take() {
                    self.st = 3;
                    return Step::Syscall(SyscallReq::Lseek {
                        fd: self.src_fd.unwrap(),
                        pos,
                    });
                }
                self.st = 4;
                self.step(ctx)
            }
            3 => {
                ctx.take_ret();
                self.st = 4;
                self.step(ctx)
            }
            4 => {
                self.st = 5;
                Step::splice(
                    SpliceReq::new(self.src_fd.unwrap(), self.dst_fd.unwrap()).len(self.len),
                )
            }
            5 => {
                *self.result.borrow_mut() = Some(ctx.take_ret());
                Step::Exit(0)
            }
            _ => Step::Exit(0),
        }
    }
}

fn ram_kernel() -> Kernel {
    KernelBuilder::paper_machine(DiskProfile::ramdisk()).build()
}

fn run_probe(k: &mut Kernel, probe: SpliceProbe) -> Option<SyscallRet> {
    let pid = k.spawn(Box::new(probe));
    let horizon = k.horizon(120);
    k.run_to_exit(horizon);
    assert!(!matches!(k.procs().must(pid).state, ProcState::Exited(2)));
    None // callers read the shared cell
}

#[test]
fn splice_with_unaligned_source_offset_is_einval_for_file_sink() {
    let mut k = ram_kernel();
    k.setup_file("/d0/src", 100_000, 1);
    k.cold_cache();
    let (mut probe, result) = SpliceProbe::new("/d0/src", "/d1/dst", SpliceLen::Eof);
    probe.src_seek = Some(1000); // not block-aligned
    run_probe(&mut k, probe);
    assert_eq!(
        result.borrow().clone(),
        Some(SyscallRet::Err(Errno::Einval))
    );
}

#[test]
fn splice_from_a_hole_is_einval() {
    let mut k = ram_kernel();
    // Build a file whose first block is a hole.
    {
        let unit = &mut k.disks_mut()[0];
        let ino = unit.fs.create("/holey").unwrap();
        let (kind, fs) = (&mut unit.kind, &mut unit.fs);
        fs.write_direct(kind.store_mut(), ino, 16_384, b"tail")
            .unwrap();
        fs.sync(kind.store_mut());
    }
    k.cold_cache();
    let (probe, result) = SpliceProbe::new("/d0/holey", "/d1/dst", SpliceLen::Eof);
    run_probe(&mut k, probe);
    assert_eq!(
        result.borrow().clone(),
        Some(SyscallRet::Err(Errno::Einval))
    );
}

#[test]
fn splice_clamps_length_to_eof() {
    let mut k = ram_kernel();
    k.setup_file("/d0/src", 50_000, 2);
    k.cold_cache();
    let (probe, result) = SpliceProbe::new(
        "/d0/src",
        "/d1/dst",
        SpliceLen::Bytes(1 << 30), // far past EOF
    );
    run_probe(&mut k, probe);
    assert_eq!(result.borrow().clone(), Some(SyscallRet::Val(50_000)));
    assert_eq!(k.verify_pattern_file("/d1/dst", 50_000, 2), None);
}

#[test]
fn splice_at_eof_returns_zero() {
    let mut k = ram_kernel();
    k.setup_file("/d0/src", 8_192, 3);
    k.cold_cache();
    let (mut probe, result) = SpliceProbe::new("/d0/src", "/d1/dst", SpliceLen::Eof);
    probe.src_seek = Some(8_192);
    run_probe(&mut k, probe);
    assert_eq!(result.borrow().clone(), Some(SyscallRet::Val(0)));
}

#[test]
fn splice_from_write_only_source_is_ebadf() {
    // A descriptor opened for writing only cannot feed a splice. This
    // used to sail past the fd checks and read the file anyway.
    let mut k = ram_kernel();
    k.setup_file("/d0/src", 8_192, 6);
    k.cold_cache();
    let (mut probe, result) = SpliceProbe::new("/d0/src", "/d1/dst", SpliceLen::Eof);
    probe.src_flags = OpenFlags::CREATE; // write-only
    run_probe(&mut k, probe);
    assert_eq!(result.borrow().clone(), Some(SyscallRet::Err(Errno::Ebadf)));
    // Every rejection funnels through the consolidated helper and is
    // counted.
    assert_eq!(k.metrics().splice.rejected, 1);
    assert_eq!(k.metrics().splice.started, 0);
}

#[test]
fn splice_to_read_only_sink_is_ebadf() {
    let mut k = ram_kernel();
    k.setup_file("/d0/src", 8_192, 6);
    k.setup_file("/d1/dst", 8_192, 6);
    k.cold_cache();
    let (mut probe, result) = SpliceProbe::new("/d0/src", "/d1/dst", SpliceLen::Eof);
    probe.dst_flags = OpenFlags::RDONLY;
    run_probe(&mut k, probe);
    assert_eq!(result.borrow().clone(), Some(SyscallRet::Err(Errno::Ebadf)));
    assert_eq!(k.metrics().splice.rejected, 1);
}

#[test]
fn splice_to_unconnected_socket_is_enotconn() {
    let mut k = ram_kernel();
    k.setup_file("/d0/src", 8_192, 4);
    k.cold_cache();

    struct P {
        st: u32,
        src: Option<Fd>,
        sock: Option<Fd>,
        result: std::rc::Rc<std::cell::RefCell<Option<SyscallRet>>>,
    }
    impl Program for P {
        fn step(&mut self, ctx: &mut UserCtx) -> Step {
            match self.st {
                0 => {
                    self.st = 1;
                    Step::Syscall(SyscallReq::Open {
                        path: "/d0/src".into(),
                        flags: OpenFlags::RDONLY,
                    })
                }
                1 => {
                    self.src = ctx.take_ret().as_fd();
                    self.st = 2;
                    Step::Syscall(SyscallReq::Socket)
                }
                2 => {
                    self.sock = ctx.take_ret().as_fd();
                    self.st = 3;
                    Step::splice(
                        SpliceReq::new(self.src.unwrap(), self.sock.unwrap())
                            .len(SpliceLen::Bytes(8192)),
                    )
                }
                3 => {
                    *self.result.borrow_mut() = Some(ctx.take_ret());
                    Step::Exit(0)
                }
                _ => Step::Exit(0),
            }
        }
    }
    let result = std::rc::Rc::new(std::cell::RefCell::new(None));
    k.spawn(Box::new(P {
        st: 0,
        src: None,
        sock: None,
        result: result.clone(),
    }));
    let horizon = k.horizon(60);
    k.run_to_exit(horizon);
    assert_eq!(
        result.borrow().clone(),
        Some(SyscallRet::Err(Errno::Enotconn))
    );
}

#[test]
fn socket_source_requires_byte_count() {
    // SPLICE_EOF on a socket source has no meaning: Einval.
    let mut k = ram_kernel();
    struct P {
        st: u32,
        a: Option<Fd>,
        b: Option<Fd>,
        result: std::rc::Rc<std::cell::RefCell<Option<SyscallRet>>>,
    }
    impl Program for P {
        fn step(&mut self, ctx: &mut UserCtx) -> Step {
            match self.st {
                0 => {
                    self.st = 1;
                    Step::Syscall(SyscallReq::Socket)
                }
                1 => {
                    self.a = ctx.take_ret().as_fd();
                    self.st = 2;
                    Step::Syscall(SyscallReq::Socket)
                }
                2 => {
                    self.b = ctx.take_ret().as_fd();
                    self.st = 3;
                    Step::Syscall(SyscallReq::Connect {
                        fd: self.b.unwrap(),
                        addr: kproc::SockAddr { host: 1, port: 1 },
                    })
                }
                3 => {
                    ctx.take_ret();
                    self.st = 4;
                    Step::splice(SpliceReq::new(self.a.unwrap(), self.b.unwrap()))
                }
                4 => {
                    *self.result.borrow_mut() = Some(ctx.take_ret());
                    Step::Exit(0)
                }
                _ => Step::Exit(0),
            }
        }
    }
    let result = std::rc::Rc::new(std::cell::RefCell::new(None));
    k.spawn(Box::new(P {
        st: 0,
        a: None,
        b: None,
        result: result.clone(),
    }));
    let horizon = k.horizon(60);
    k.run_to_exit(horizon);
    assert_eq!(
        result.borrow().clone(),
        Some(SyscallRet::Err(Errno::Einval))
    );
}

#[test]
fn bounded_splices_advance_the_offset() {
    // Two back-to-back bounded splices move consecutive ranges (the §4
    // video pattern).
    let mut k = ram_kernel();
    k.setup_file("/d0/src", 32_768, 5);
    k.cold_cache();

    struct P {
        st: u32,
        src: Option<Fd>,
        dst: Option<Fd>,
        moved: std::rc::Rc<std::cell::RefCell<Vec<i64>>>,
    }
    impl Program for P {
        fn step(&mut self, ctx: &mut UserCtx) -> Step {
            match self.st {
                0 => {
                    self.st = 1;
                    Step::Syscall(SyscallReq::Open {
                        path: "/d0/src".into(),
                        flags: OpenFlags::RDONLY,
                    })
                }
                1 => {
                    self.src = ctx.take_ret().as_fd();
                    self.st = 2;
                    Step::Syscall(SyscallReq::Open {
                        path: "/d1/dst".into(),
                        flags: OpenFlags::CREATE,
                    })
                }
                2 => {
                    self.dst = ctx.take_ret().as_fd();
                    self.st = 3;
                    Step::splice(
                        SpliceReq::new(self.src.unwrap(), self.dst.unwrap())
                            .len(SpliceLen::Bytes(16_384)),
                    )
                }
                3 | 4 => {
                    self.moved.borrow_mut().push(ctx.take_ret().as_val());
                    self.st += 1;
                    if self.st == 5 {
                        return Step::Exit(0);
                    }
                    Step::splice(
                        SpliceReq::new(self.src.unwrap(), self.dst.unwrap())
                            .len(SpliceLen::Bytes(16_384)),
                    )
                }
                _ => Step::Exit(0),
            }
        }
    }
    let moved = std::rc::Rc::new(std::cell::RefCell::new(Vec::new()));
    k.spawn(Box::new(P {
        st: 0,
        src: None,
        dst: None,
        moved: moved.clone(),
    }));
    let horizon = k.horizon(120);
    k.run_to_exit(horizon);
    assert_eq!(moved.borrow().clone(), vec![16_384, 16_384]);
    assert_eq!(k.verify_pattern_file("/d1/dst", 32_768, 5), None);
}

#[test]
fn socket_to_file_splice_receives_to_disk() {
    // Extension beyond §5.1's list: an in-kernel receive-to-file path.
    use kproc::programs::UdpSource;
    let mut k = ram_kernel();
    let total = 10u64 * 2048;

    struct Receiver {
        st: u32,
        sock: Option<Fd>,
        file: Option<Fd>,
        result: std::rc::Rc<std::cell::RefCell<Option<SyscallRet>>>,
    }
    impl Program for Receiver {
        fn step(&mut self, ctx: &mut UserCtx) -> Step {
            match self.st {
                0 => {
                    self.st = 1;
                    Step::Syscall(SyscallReq::Socket)
                }
                1 => {
                    self.sock = ctx.take_ret().as_fd();
                    self.st = 2;
                    Step::Syscall(SyscallReq::Bind {
                        fd: self.sock.unwrap(),
                        port: 7100,
                    })
                }
                2 => {
                    ctx.take_ret();
                    self.st = 3;
                    Step::Syscall(SyscallReq::Open {
                        path: "/d1/incoming".into(),
                        flags: OpenFlags::CREATE,
                    })
                }
                3 => {
                    self.file = ctx.take_ret().as_fd();
                    self.st = 4;
                    Step::splice(
                        SpliceReq::new(self.sock.unwrap(), self.file.unwrap())
                            .len(SpliceLen::Bytes(10 * 2048)),
                    )
                }
                4 => {
                    *self.result.borrow_mut() = Some(ctx.take_ret());
                    self.st = 5;
                    Step::Syscall(SyscallReq::Fsync(self.file.unwrap()))
                }
                5 => {
                    ctx.take_ret();
                    Step::Exit(0)
                }
                _ => Step::Exit(0),
            }
        }
    }
    let result = std::rc::Rc::new(std::cell::RefCell::new(None));
    let rx = k.spawn(Box::new(Receiver {
        st: 0,
        sock: None,
        file: None,
        result: result.clone(),
    }));
    k.spawn(Box::new(UdpSource::new(
        kproc::SockAddr {
            host: 1,
            port: 7100,
        },
        2048,
        10,
        ksim::Dur::from_ms(2),
        55,
    )));
    let horizon = k.horizon(120);
    k.run_to_exit(horizon);
    assert!(matches!(k.procs().must(rx).state, ProcState::Exited(0)));
    assert_eq!(result.borrow().clone(), Some(SyscallRet::Val(total as i64)));
    // The file holds exactly the pattern stream the source sent, and no
    // user-space copies happened on the receive path (the source's send
    // copyin is its own).
    let got = k.dump_file("/d1/incoming");
    assert_eq!(got.len() as u64, total);
    assert_eq!(
        kproc::programs::util::pattern_check(55, 0, &got),
        None,
        "received file must match the sent stream"
    );
    assert!(k.fsck_all().is_empty());
}
