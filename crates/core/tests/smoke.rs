//! End-to-end smoke tests: boot the kernel, run real programs, verify
//! data integrity and basic sanity of the measurements.

use khw::DiskProfile;
use kproc::programs::{Cp, Scp};
use kproc::ProcState;
use splice::KernelBuilder;

const MB: u64 = 1024 * 1024;

#[test]
fn cp_copies_a_file_on_the_ram_disk() {
    let mut k = KernelBuilder::new()
        .disk("ram", DiskProfile::ramdisk())
        .build();
    k.setup_file("/ram/src", MB, 42);
    k.cold_cache();

    let pid = k.spawn(Box::new(Cp::new("/ram/src", "/ram/dst")));
    let horizon = k.horizon(120);
    k.run_to_exit(horizon);
    assert!(matches!(k.procs().must(pid).state, ProcState::Exited(0)));
    assert_eq!(k.verify_pattern_file("/ram/dst", MB, 42), None);
    // cp moves every byte through user space, twice.
    let m = k.metrics();
    assert_eq!(m.copy.copyout_bytes, MB);
    assert_eq!(m.copy.copyin_bytes, MB);
    assert!(k.fsck_all().is_empty());
}

#[test]
fn scp_splices_a_file_on_the_ram_disk() {
    let mut k = KernelBuilder::new()
        .disk("ram", DiskProfile::ramdisk())
        .build();
    k.setup_file("/ram/src", MB, 7);
    k.cold_cache();

    let pid = k.spawn(Box::new(Scp::new("/ram/src", "/ram/dst")));
    let horizon = k.horizon(120);
    k.run_to_exit(horizon);
    assert!(matches!(k.procs().must(pid).state, ProcState::Exited(0)));
    assert_eq!(k.verify_pattern_file("/ram/dst", MB, 7), None);
    // The whole point: zero user-space copies.
    let m = k.metrics();
    assert_eq!(m.copy.copyout_bytes, 0);
    assert_eq!(m.copy.copyin_bytes, 0);
    assert!(m.splice.shared_writes >= MB / 8192);
    assert!(k.fsck_all().is_empty());
}

#[test]
fn cp_and_scp_work_across_scsi_disks() {
    for make in [
        Box::new(|| Box::new(Cp::new("/d0/src", "/d1/dst")) as Box<dyn kproc::Program>)
            as Box<dyn Fn() -> Box<dyn kproc::Program>>,
        Box::new(|| Box::new(Scp::new("/d0/src", "/d1/dst")) as Box<dyn kproc::Program>),
    ] {
        let mut k = KernelBuilder::paper_machine(DiskProfile::rz56()).build();
        k.setup_file("/d0/src", MB, 3);
        k.cold_cache();
        let pid = k.spawn(make());
        let horizon = k.horizon(300);
        k.run_to_exit(horizon);
        assert!(
            matches!(k.procs().must(pid).state, ProcState::Exited(0)),
            "copy program failed"
        );
        assert_eq!(k.verify_pattern_file("/d1/dst", MB, 3), None);
        assert!(k.fsck_all().is_empty());
    }
}

#[test]
fn splice_is_faster_than_cp_on_the_ram_disk() {
    let run = |splice: bool| -> f64 {
        let mut k = KernelBuilder::new()
            .disk("ram", DiskProfile::ramdisk())
            .build();
        k.setup_file("/ram/src", 4 * MB, 9);
        k.cold_cache();
        let t0 = k.now();
        if splice {
            k.spawn(Box::new(Scp::new("/ram/src", "/ram/dst")));
        } else {
            k.spawn(Box::new(Cp::new("/ram/src", "/ram/dst")));
        }
        let horizon = k.horizon(600);
        let t1 = k.run_to_exit(horizon);
        t1.since(t0).as_secs_f64()
    };
    let t_cp = run(false);
    let t_scp = run(true);
    assert!(
        t_scp < t_cp * 0.8,
        "splice ({t_scp:.3}s) should clearly beat cp ({t_cp:.3}s) on the RAM disk"
    );
}
