//! The endpoint matrix: every source×destination `FileObj` combination
//! either completes byte-exact or fails with the errno the capability
//! table documents — and every completed transfer carries a well-ordered
//! `SpliceSpan`.
//!
//! The expected outcome for each pair is *derived from the public
//! [`caps`] table*, so this test pins the contract between the
//! capability layer and the unified engine: if a class gains or loses a
//! capability, the matrix moves with it.

use kdev::{AudioDac, Framebuffer, VideoDac};
use khw::DiskProfile;
use kproc::programs::{EndSpec, EndpointPair, UdpSink, UdpSource};
use kproc::{Errno, ProcState, SockAddr, SpliceLen, SyscallRet};
use ksim::Dur;
use splice::{caps, Kernel, KernelBuilder, ObjClass};

/// Transfer size: 3 cache blocks, 12 datagrams.
const TOTAL: u64 = 24_576;
/// Datagram payload for socket sources.
const DGRAM: usize = 2_048;
/// The engine's stream-pull / block granularity.
const CHUNK: usize = 8_192;
/// Framebuffer frame size (larger than the transfer, so offsets never
/// wrap and the capture check stays simple).
const FRAME: usize = 65_536;
const SEED: u64 = 99;

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Kind {
    File,
    Sock,
    Fb,
    Audio,
    Video,
}

fn class(k: Kind) -> ObjClass {
    match k {
        Kind::File => ObjClass::File,
        Kind::Sock => ObjClass::Sock,
        Kind::Fb => ObjClass::Fb,
        Kind::Audio => ObjClass::Audio,
        Kind::Video => ObjClass::Video,
    }
}

/// The documented rejection for a pair, straight from the capability
/// table; `None` means the pair must complete.
fn expected_errno(src: Kind, dst: Kind) -> Option<Errno> {
    if !caps(class(src)).source() || !caps(class(dst)).sink() {
        return Some(Errno::Enotsup);
    }
    None
}

fn kernel() -> Kernel {
    KernelBuilder::paper_machine(DiskProfile::ramdisk())
        .framebuffer("/dev/fb", Framebuffer::new(FRAME, 30))
        .audio_dac("/dev/speaker", AudioDac::new(64_000, 64 * 1024))
        .video_dac("/dev/video_dac", VideoDac::new(CHUNK))
        .build()
}

/// Framebuffer bytes encode `(frame, offset)`; a correct capture
/// decodes to a constant frame number within each pull (tearing-free)
/// and non-decreasing frames across pulls.
fn verify_fb_capture(tag: &str, data: &[u8]) {
    assert_eq!(data.len() as u64, TOTAL, "{tag}: captured length");
    let mut last_frame = 0u8;
    for (c, chunk) in data.chunks(CHUNK).enumerate() {
        let base = c * CHUNK;
        let frame = chunk[0] ^ (base as u8).rotate_left(3);
        assert!(frame >= last_frame, "{tag}: frames must advance");
        last_frame = frame;
        for (i, &b) in chunk.iter().enumerate() {
            let off = (base + i) % FRAME;
            assert_eq!(
                b ^ (off as u8).rotate_left(3),
                frame,
                "{tag}: torn capture at offset {}",
                base + i
            );
        }
    }
}

fn run_combo(src: Kind, dst: Kind) {
    let tag = format!("{src:?}->{dst:?}");
    let mut k = kernel();
    if src == Kind::File {
        k.setup_file("/d0/src", TOTAL, SEED);
    }
    k.cold_cache();

    let src_spec = match src {
        Kind::File => EndSpec::read("/d0/src"),
        Kind::Sock => EndSpec::SockBind { port: 7000 },
        Kind::Fb => EndSpec::read("/dev/fb"),
        Kind::Audio => EndSpec::read("/dev/speaker"),
        Kind::Video => EndSpec::read("/dev/video_dac"),
    };
    let dst_spec = match dst {
        Kind::File => EndSpec::create("/d1/dst"),
        Kind::Sock => EndSpec::SockConnect {
            addr: SockAddr {
                host: 1,
                port: 7001,
            },
        },
        Kind::Fb => EndSpec::write("/dev/fb"),
        Kind::Audio => EndSpec::write("/dev/speaker"),
        Kind::Video => EndSpec::write("/dev/video_dac"),
    };
    let expect = expected_errno(src, dst);

    // The sink must bind before the splice's first send, so it is
    // spawned (and scheduled) ahead of the splicing program.
    let mut sink_pid = None;
    if expect.is_none() && dst == Kind::Sock {
        // Datagram boundaries survive the splice: socket sources
        // forward per-datagram, block/stream sources per chunk.
        let per = if src == Kind::Sock { DGRAM } else { CHUNK };
        sink_pid = Some(k.spawn(Box::new(UdpSink::new(7001, TOTAL / per as u64))));
    }

    let (mut pair, result) = EndpointPair::new(src_spec, dst_spec, SpliceLen::Bytes(TOTAL));
    if dst == Kind::File {
        pair = pair.with_fsync();
    }
    let pid = k.spawn(Box::new(pair));

    if expect.is_none() && src == Kind::Sock {
        k.spawn(Box::new(UdpSource::new(
            SockAddr {
                host: 1,
                port: 7000,
            },
            DGRAM,
            TOTAL / DGRAM as u64,
            Dur::from_ms(1),
            SEED,
        )));
    }

    let horizon = k.horizon(120);
    k.run_to_exit(horizon);
    assert!(
        matches!(k.procs().must(pid).state, ProcState::Exited(0)),
        "{tag}: driver program failed setup"
    );
    let got = result.borrow().clone().expect("splice returned");

    match expect {
        Some(e) => {
            assert_eq!(got, SyscallRet::Err(e), "{tag}: documented errno");
            let m = k.metrics();
            assert_eq!(m.splice.rejected, 1, "{tag}: rejection counted");
            assert_eq!(m.splice.started, 0, "{tag}: engine never started");
            assert!(
                k.kstat().spans.is_empty(),
                "{tag}: rejected splice must not open a span"
            );
        }
        None => {
            assert_eq!(got, SyscallRet::Val(TOTAL as i64), "{tag}: full transfer");
            let m = k.metrics();
            assert_eq!(m.splice.rejected, 0, "{tag}");
            assert_eq!(m.splice.started, 1, "{tag}");

            // Span lifecycle: created ≤ first read ≤ first write ≤
            // drained ≤ completed, with every byte accounted for.
            let span = k.kstat().spans.iter().next().expect("span recorded");
            let created = span.created.expect("created");
            let first_read = span.first_read.expect("first_read");
            let first_write = span.first_write.expect("first_write");
            let drained = span.drained.expect("drained");
            let completed = span.completed.expect("completed");
            assert!(
                created <= first_read
                    && first_read <= first_write
                    && first_write <= drained
                    && drained <= completed,
                "{tag}: span ordering {span:?}"
            );
            assert_eq!(span.bytes_moved, TOTAL, "{tag}: span bytes");

            match dst {
                Kind::File => {
                    match src {
                        Kind::File | Kind::Sock => assert_eq!(
                            k.verify_pattern_file("/d1/dst", TOTAL, SEED),
                            None,
                            "{tag}: byte-exact file content"
                        ),
                        Kind::Fb => verify_fb_capture(&tag, &k.dump_file("/d1/dst")),
                        _ => unreachable!(),
                    }
                    assert!(k.fsck_all().is_empty(), "{tag}: fsck clean");
                }
                Kind::Sock => assert!(
                    matches!(
                        k.procs().must(sink_pid.unwrap()).state,
                        ProcState::Exited(0)
                    ),
                    "{tag}: sink received every datagram"
                ),
                // Paced devices: the span accounting above is the
                // integrity check (the DAC consumed every byte).
                _ => {}
            }
        }
    }
}

#[test]
fn endpoint_matrix_completes_or_rejects_per_capability_table() {
    const KINDS: [Kind; 5] = [Kind::File, Kind::Sock, Kind::Fb, Kind::Audio, Kind::Video];
    for src in KINDS {
        for dst in KINDS {
            run_combo(src, dst);
        }
    }
}

#[test]
fn framebuffer_capture_to_file_is_tearing_free() {
    // The pair the refactor unlocked: fb -> file with full flow control.
    run_combo(Kind::Fb, Kind::File);
}

#[test]
fn socket_spool_to_disk_is_byte_exact() {
    // The other unlocked pair: socket -> file spooling.
    run_combo(Kind::Sock, Kind::File);
}
