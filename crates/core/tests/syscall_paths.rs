//! Syscall-layer behaviour: error paths, offsets, partial writes,
//! namespace operations — driven through small scripted programs.

use khw::DiskProfile;
use kproc::programs::util::pattern_bytes;
use kproc::{
    Errno, Fd, OpenFlags, ProcState, Program, SpliceLen, SpliceReq, Step, SyscallReq, SyscallRet,
    UserCtx,
};
use splice::{Kernel, KernelBuilder};

/// Runs a fixed list of syscalls, recording every return value.
struct Script {
    calls: Vec<SyscallReq>,
    next: usize,
    results: std::rc::Rc<std::cell::RefCell<Vec<SyscallRet>>>,
    started: bool,
}

impl Script {
    fn new(calls: Vec<SyscallReq>) -> (Script, std::rc::Rc<std::cell::RefCell<Vec<SyscallRet>>>) {
        let results = std::rc::Rc::new(std::cell::RefCell::new(Vec::new()));
        (
            Script {
                calls,
                next: 0,
                results: results.clone(),
                started: false,
            },
            results,
        )
    }
}

impl Program for Script {
    fn step(&mut self, ctx: &mut UserCtx) -> Step {
        if self.started {
            self.results.borrow_mut().push(ctx.take_ret());
        }
        self.started = true;
        if self.next >= self.calls.len() {
            return Step::Exit(0);
        }
        let call = self.calls[self.next].clone();
        self.next += 1;
        Step::Syscall(call)
    }

    fn name(&self) -> &str {
        "script"
    }
}

fn ram_kernel() -> Kernel {
    KernelBuilder::new()
        .disk("d", DiskProfile::ramdisk())
        .build()
}

fn run_script(k: &mut Kernel, calls: Vec<SyscallReq>) -> Vec<SyscallRet> {
    let (script, results) = Script::new(calls);
    let pid = k.spawn(Box::new(script));
    let horizon = k.horizon(120);
    k.run_to_exit(horizon);
    assert!(matches!(k.procs().must(pid).state, ProcState::Exited(0)));
    let out = results.borrow().clone();
    out
}

#[test]
fn open_errors() {
    let mut k = ram_kernel();
    let r = run_script(
        &mut k,
        vec![
            SyscallReq::Open {
                path: "/d/missing".into(),
                flags: OpenFlags::RDONLY,
            },
            SyscallReq::Open {
                path: "/nodisk/x".into(),
                flags: OpenFlags::RDONLY,
            },
            SyscallReq::Open {
                path: "/dev/nonexistent".into(),
                flags: OpenFlags::WRONLY,
            },
        ],
    );
    assert_eq!(r[0], SyscallRet::Err(Errno::Enoent));
    assert_eq!(r[1], SyscallRet::Err(Errno::Enoent));
    assert_eq!(r[2], SyscallRet::Err(Errno::Enoent));
}

#[test]
fn bad_descriptor_errors() {
    let mut k = ram_kernel();
    let r = run_script(
        &mut k,
        vec![
            SyscallReq::Read { fd: Fd(9), len: 10 },
            SyscallReq::Write {
                fd: Fd(9),
                data: vec![1],
            },
            SyscallReq::Close(Fd(9)),
            SyscallReq::Fsync(Fd(9)),
        ],
    );
    for ret in &r {
        assert_eq!(*ret, SyscallRet::Err(Errno::Ebadf), "{ret:?}");
    }
}

#[test]
fn write_then_read_back_with_lseek() {
    let mut k = ram_kernel();
    let data = pattern_bytes(9, 0, 10_000);
    let r = run_script(
        &mut k,
        vec![
            SyscallReq::Open {
                path: "/d/f".into(),
                flags: OpenFlags::CREATE,
            },
            SyscallReq::Write {
                fd: Fd(3),
                data: data.clone(),
            },
            SyscallReq::Fstat(Fd(3)),
            SyscallReq::Close(Fd(3)),
            SyscallReq::Open {
                path: "/d/f".into(),
                flags: OpenFlags::RDONLY,
            },
            SyscallReq::Lseek {
                fd: Fd(3),
                pos: 5_000,
            },
            SyscallReq::Read {
                fd: Fd(3),
                len: 5_000,
            },
            // Reading past EOF returns empty.
            SyscallReq::Read {
                fd: Fd(3),
                len: 100,
            },
        ],
    );
    assert_eq!(r[1], SyscallRet::Val(10_000));
    assert_eq!(r[2], SyscallRet::Val(10_000), "fstat size");
    assert_eq!(r[6], SyscallRet::Data(data[5_000..].to_vec()));
    assert_eq!(r[7], SyscallRet::Data(vec![]));
}

#[test]
fn partial_overwrite_read_modify_write() {
    let mut k = ram_kernel();
    k.setup_file("/d/f", 20_000, 4);
    k.cold_cache();
    // Overwrite 100 bytes in the middle of block 1 through the write
    // syscall (forces the read-modify-write path).
    let r = run_script(
        &mut k,
        vec![
            SyscallReq::Open {
                path: "/d/f".into(),
                flags: OpenFlags::WRONLY,
            },
            SyscallReq::Lseek {
                fd: Fd(3),
                pos: 9_000,
            },
            SyscallReq::Write {
                fd: Fd(3),
                data: vec![0xAA; 100],
            },
            SyscallReq::Fsync(Fd(3)),
            SyscallReq::Close(Fd(3)),
        ],
    );
    assert_eq!(r[2], SyscallRet::Val(100));
    let got = k.dump_file("/d/f");
    let mut want = pattern_bytes(4, 0, 20_000);
    want[9_000..9_100].fill(0xAA);
    assert_eq!(got, want, "surrounding bytes must survive the overwrite");
    assert!(k.fsck_all().is_empty());
}

#[test]
fn truncate_on_reopen_discards_old_contents() {
    let mut k = ram_kernel();
    k.setup_file("/d/f", 30_000, 5);
    k.cold_cache();
    let r = run_script(
        &mut k,
        vec![
            SyscallReq::Open {
                path: "/d/f".into(),
                flags: OpenFlags::CREATE, // O_CREAT|O_TRUNC|O_WRONLY
            },
            SyscallReq::Write {
                fd: Fd(3),
                data: vec![7u8; 100],
            },
            SyscallReq::Fsync(Fd(3)),
            SyscallReq::Close(Fd(3)),
        ],
    );
    assert_eq!(r[1], SyscallRet::Val(100));
    assert_eq!(k.file_size("/d/f"), 100);
    assert_eq!(k.dump_file("/d/f"), vec![7u8; 100]);
    assert!(k.fsck_all().is_empty());
}

#[test]
fn unlink_and_enoent_after() {
    let mut k = ram_kernel();
    k.setup_file("/d/f", 5_000, 6);
    k.cold_cache();
    let r = run_script(
        &mut k,
        vec![
            SyscallReq::Unlink {
                path: "/d/f".into(),
            },
            SyscallReq::Open {
                path: "/d/f".into(),
                flags: OpenFlags::RDONLY,
            },
            SyscallReq::Unlink {
                path: "/d/f".into(),
            },
        ],
    );
    assert_eq!(r[0], SyscallRet::Val(0));
    assert_eq!(r[1], SyscallRet::Err(Errno::Enoent));
    assert_eq!(r[2], SyscallRet::Err(Errno::Enoent));
    assert!(k.fsck_all().is_empty());
}

#[test]
fn read_from_writeonly_fd_fails() {
    let mut k = ram_kernel();
    k.setup_file("/d/f", 1_000, 8);
    k.cold_cache();
    let r = run_script(
        &mut k,
        vec![
            SyscallReq::Open {
                path: "/d/f".into(),
                flags: OpenFlags::WRONLY,
            },
            SyscallReq::Read { fd: Fd(3), len: 10 },
        ],
    );
    assert_eq!(r[1], SyscallRet::Err(Errno::Ebadf));
}

#[test]
fn gettime_advances() {
    let mut k = ram_kernel();
    let r = run_script(&mut k, vec![SyscallReq::GetTime, SyscallReq::GetTime]);
    let (SyscallRet::Time(a), SyscallRet::Time(b)) = (&r[0], &r[1]) else {
        panic!("{r:?}")
    };
    assert!(b > a, "syscalls take time");
}

#[test]
fn socket_errors() {
    let mut k = ram_kernel();
    let r = run_script(
        &mut k,
        vec![
            SyscallReq::Socket,
            SyscallReq::Send {
                fd: Fd(3),
                data: vec![0; 10],
            }, // not connected
            SyscallReq::Socket,
            SyscallReq::Bind {
                fd: Fd(4),
                port: 80,
            },
            SyscallReq::Bind {
                fd: Fd(3),
                port: 80,
            }, // port in use
        ],
    );
    assert_eq!(r[1], SyscallRet::Err(Errno::Enotconn));
    assert_eq!(r[4], SyscallRet::Err(Errno::Eaddrinuse));
}

#[test]
fn hard_link_via_syscall_and_splice_from_either_name() {
    let mut k = ram_kernel();
    k.setup_file("/d/orig", 20_000, 12);
    k.cold_cache();
    let r = run_script(
        &mut k,
        vec![
            SyscallReq::Link {
                existing: "/d/orig".into(),
                new: "/d/alias".into(),
            },
            // Cross-filesystem links are refused.
            SyscallReq::Link {
                existing: "/d/orig".into(),
                new: "/dev/speaker".into(),
            },
        ],
    );
    assert_eq!(r[0], SyscallRet::Val(0));
    assert_eq!(r[1], SyscallRet::Err(Errno::Enoent));
    // The alias reads identically…
    assert_eq!(k.dump_file("/d/alias"), k.dump_file("/d/orig"));
    // …and splicing from it produces the same bytes.
    let pid = k.spawn(Box::new(kproc::programs::Scp::new("/d/alias", "/d/copy")));
    let horizon = k.horizon(120);
    k.run_to_exit(horizon);
    assert!(matches!(k.procs().must(pid).state, ProcState::Exited(0)));
    assert_eq!(k.verify_pattern_file("/d/copy", 20_000, 12), None);
    assert!(k.fsck_all().is_empty());
}

#[test]
fn truncate_over_dirty_blocks_discards_them() {
    // Regression: cp WITHOUT fsync leaves the partial final block as a
    // delayed write; re-opening the destination with O_TRUNC must discard
    // it, not panic or write it back into a freed block.
    let mut k = KernelBuilder::paper_machine_ram().build();
    k.setup_file("/d0/src", 100_000, 21); // unaligned: partial last block
    k.cold_cache();
    let pid = k.spawn(Box::new(kproc::programs::Cp::with_options(
        "/d0/src", "/d1/dst", 8192, false, 3,
    )));
    let horizon = k.horizon(300);
    k.run_to_exit(horizon);
    assert!(matches!(k.procs().must(pid).state, ProcState::Exited(0)));
    assert!(k.metrics().cache.trunc_purged > 0);
    // Without fsync the last (partial) block is not durable until the
    // cache flushes; flush, then verify.
    k.cold_cache();
    assert_eq!(k.verify_pattern_file("/d1/dst", 100_000, 21), None);
    assert!(k.fsck_all().is_empty());
}

#[test]
fn closing_spliced_socket_source_completes_the_splice() {
    // Regression: a synchronous splice from a socket must not sleep
    // forever when another descriptor... here, the owner's own close path
    // is exercised via FASYNC: the splice is async, the owner closes the
    // source socket before all bytes arrived, and must still get SIGIO.
    use kproc::Sig;
    let mut k = ram_kernel();
    struct P {
        st: u32,
        sock: Option<Fd>,
        file: Option<Fd>,
    }
    impl Program for P {
        fn step(&mut self, ctx: &mut UserCtx) -> Step {
            match self.st {
                0 => {
                    self.st = 1;
                    Step::Syscall(SyscallReq::Socket)
                }
                1 => {
                    self.sock = ctx.take_ret().as_fd();
                    self.st = 2;
                    Step::Syscall(SyscallReq::Bind {
                        fd: self.sock.unwrap(),
                        port: 9,
                    })
                }
                2 => {
                    ctx.take_ret();
                    self.st = 3;
                    Step::Syscall(SyscallReq::Open {
                        path: "/d/out".into(),
                        flags: OpenFlags::CREATE,
                    })
                }
                3 => {
                    self.file = ctx.take_ret().as_fd();
                    self.st = 4;
                    Step::Syscall(SyscallReq::Sigaction {
                        sig: Sig::Io,
                        catch: true,
                    })
                }
                4 => {
                    ctx.take_ret();
                    self.st = 5;
                    Step::Syscall(SyscallReq::Fcntl {
                        fd: self.sock.unwrap(),
                        cmd: kproc::FcntlCmd::SetAsync(true),
                    })
                }
                5 => {
                    ctx.take_ret();
                    self.st = 6;
                    // Far more than will arrive.
                    Step::splice(
                        SpliceReq::new(self.sock.unwrap(), self.file.unwrap())
                            .len(SpliceLen::Bytes(1 << 20)),
                    )
                }
                6 => {
                    ctx.take_ret();
                    // Close the source immediately: EOF for the splice.
                    self.st = 7;
                    Step::Syscall(SyscallReq::Close(self.sock.take().unwrap()))
                }
                7 | 8 => {
                    ctx.take_ret();
                    self.st = 8;
                    // The SIGIO may land during the close itself (the
                    // classic pause() race the §4 example lives with), so
                    // check at every step.
                    if ctx.got_signal(Sig::Io) {
                        Step::Exit(0)
                    } else {
                        Step::Syscall(SyscallReq::Pause)
                    }
                }
                _ => Step::Exit(0),
            }
        }
    }
    let pid = k.spawn(Box::new(P {
        st: 0,
        sock: None,
        file: None,
    }));
    let horizon = k.horizon(60);
    k.run_to_exit(horizon);
    assert!(matches!(k.procs().must(pid).state, ProcState::Exited(0)));
}
