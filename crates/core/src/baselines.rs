//! Related-work baselines (§7 of the paper), for comparison benches.
//!
//! * **[PCM91] ioctl handle passing** — "Pasieka et al. suggest the UNIX
//!   ioctl be used to pass handles between source and destination devices,
//!   referring to kernel-level data objects. Their scheme decouples data
//!   movement from the application but requires user process execution to
//!   effect a data transfer between devices." Implemented as a pair of
//!   system calls: `HandleRead` pins one block's data in a kernel handle
//!   (no `copyout`), `HandleWrite` writes a handle to the destination (no
//!   `copyin`). The user process drives every block, so syscall and
//!   scheduling overhead remain even though the copies are gone.
//! * **Memory-mapped copy** — the shared-memory school (Govindan &
//!   Anderson's memory-mapped streams; Forin et al.'s mapped devices):
//!   both files are mapped and the process `memcpy`s between the mappings.
//!   No per-block system calls, but every untouched page costs a fault
//!   (kernel entry + cache fill) and the copy itself runs on the user's
//!   clock. `MmapFault` models the kernel half (faults + cache traffic);
//!   the program charges the user-mode `memcpy` as compute.
//!
//! Both baselines run against the same filesystem/cache/disk substrate as
//! `cp` and `scp`, so the benches compare data-path structure, not
//! substrate luck.

use kbuf::BreadOutcome;
use kproc::{
    Chan, ChanSpace, Errno, Fd, OpenFlags, Pid, Program, Step, SyscallReq, SyscallRet, UserCtx,
};
use ksim::Dur;

use crate::kernel::{IoCtx, Kernel};
use crate::objects::{FileId, FileObj};
use crate::syscalls::{Cont, SyscallOutcome, WriteCont};

impl Kernel {
    /// `HandleRead`: pin the next block at the descriptor's offset in a
    /// kernel handle. Returns the handle (> 0), 0 at EOF.
    pub(crate) fn do_handle_read(&mut self, pid: Pid, fid: FileId, base: Dur) -> SyscallOutcome {
        self.do_handle_read_resume(pid, fid, None, base)
    }

    /// [`Kernel::do_handle_read`] with an optionally held buffer from a
    /// biowait resume.
    pub(crate) fn do_handle_read_resume(
        &mut self,
        pid: Pid,
        fid: FileId,
        wait_buf: Option<kbuf::BufId>,
        base: Dur,
    ) -> SyscallOutcome {
        let m = self.cfg.machine.clone();
        let bs = self.cfg.block_size as usize;
        let Some(of) = self.files.get(fid) else {
            return SyscallOutcome::Done {
                cpu: base,
                ret: SyscallRet::Err(Errno::Ebadf),
            };
        };
        let FileObj::File { disk, ino } = of.obj else {
            return SyscallOutcome::Done {
                cpu: base,
                ret: SyscallRet::Err(Errno::Enotsup),
            };
        };
        let offset = of.offset;
        let size = self.disks[disk].fs.size(ino);
        if offset >= size {
            return SyscallOutcome::Done {
                cpu: base,
                ret: SyscallRet::Val(0),
            };
        }
        let lblk = offset / bs as u64;
        let boff = (offset % bs as u64) as usize;
        let take = (bs - boff).min((size - offset) as usize);
        let mut cpu = base;
        let buf = if let Some(buf) = wait_buf {
            debug_assert!(self.cache.io_done(buf), "woken before I/O completed");
            buf
        } else {
            let Some(pblk) = self.disks[disk].fs.bmap(ino, lblk) else {
                return SyscallOutcome::Done {
                    cpu: base,
                    ret: SyscallRet::Err(Errno::Einval),
                };
            };
            let dev = self.disks[disk].dev;
            let mut fx = Vec::new();
            let out = self.cache.bread(dev, pblk, bs, &mut fx);
            cpu += self.apply_cache_effects(fx, IoCtx::Process) + m.buf_op;
            match out {
                BreadOutcome::Hit(buf) => buf,
                BreadOutcome::Miss(buf) if self.cache.io_done(buf) => buf,
                BreadOutcome::Miss(buf) => {
                    // Hold the buffer across the biowait (file_read's
                    // wait_buf discipline: re-breading would deadlock on
                    // our own busy buffer).
                    self.conts.insert(
                        pid,
                        Cont::HandleRead {
                            fid,
                            wait_buf: Some(buf),
                        },
                    );
                    return SyscallOutcome::Block {
                        cpu,
                        chan: Chan::new(ChanSpace::Buf, buf.0 as u64),
                    };
                }
                BreadOutcome::Busy(buf) => {
                    self.conts.insert(
                        pid,
                        Cont::HandleRead {
                            fid,
                            wait_buf: None,
                        },
                    );
                    return SyscallOutcome::Block {
                        cpu,
                        chan: Chan::new(ChanSpace::Buf, buf.0 as u64),
                    };
                }
                BreadOutcome::NoBuffers => {
                    self.conts.insert(
                        pid,
                        Cont::HandleRead {
                            fid,
                            wait_buf: None,
                        },
                    );
                    return SyscallOutcome::Block {
                        cpu,
                        chan: Chan::new(ChanSpace::AnyBuf, 0),
                    };
                }
            }
        };
        // The whole point: the data stays in the kernel. A small
        // bookkeeping cost, no copyout.
        let data = {
            let d = self.cache.data(buf);
            let bytes = d.bytes();
            bytes[boff..boff + take].to_vec()
        };
        cpu += m.buf_op;
        let mut fx = Vec::new();
        self.cache.brelse(buf, &mut fx);
        cpu += self.apply_cache_effects(fx, IoCtx::Process);
        let handle = self.next_handle;
        self.next_handle += 1;
        self.handles.insert(handle, data);
        self.files.get_mut(fid).unwrap().offset += take as u64;
        SyscallOutcome::Done {
            cpu,
            ret: SyscallRet::Val(handle),
        }
    }

    /// `HandleWrite`: write a handle's data at the descriptor's offset,
    /// without a `copyin`.
    pub(crate) fn do_handle_write(
        &mut self,
        pid: Pid,
        fid: FileId,
        handle: i64,
        base: Dur,
    ) -> SyscallOutcome {
        let Some(data) = self.handles.remove(&handle) else {
            return SyscallOutcome::Done {
                cpu: base,
                ret: SyscallRet::Err(Errno::Einval),
            };
        };
        let cont = WriteCont {
            fid,
            data,
            done: 0,
            rmw_buf: None,
            kernel_data: true,
        };
        self.do_write(pid, cont, base)
    }

    /// `MmapFault`: the kernel half of copying `len` mapped bytes — page
    /// faults on both mappings plus the cache traffic they imply. The
    /// data lands in the destination cache blocks here (the user `memcpy`
    /// "through the mapping"); its CPU time is charged by the program as
    /// compute.
    pub(crate) fn do_mmap_fault(
        &mut self,
        pid: Pid,
        src_fid: FileId,
        dst_fid: FileId,
        len: usize,
    ) -> SyscallOutcome {
        self.do_mmap_fault_resume(pid, src_fid, dst_fid, len, None)
    }

    /// [`Kernel::do_mmap_fault`] with an optionally held buffer from a
    /// biowait resume.
    pub(crate) fn do_mmap_fault_resume(
        &mut self,
        pid: Pid,
        src_fid: FileId,
        dst_fid: FileId,
        len: usize,
        wait_buf: Option<kbuf::BufId>,
    ) -> SyscallOutcome {
        let m = self.cfg.machine.clone();
        let bs = self.cfg.block_size as usize;
        let len = len.min(bs);
        // Fault entry instead of syscall entry.
        let pages = len.div_ceil(m.page_size) as u64;
        let base = m.page_fault * pages * 2;

        // Read the source block through the cache (a major fault).
        let (sdisk, sino) = match self.files.get(src_fid).map(|f| f.obj) {
            Some(FileObj::File { disk, ino }) => (disk, ino),
            _ => {
                return SyscallOutcome::Done {
                    cpu: m.page_fault,
                    ret: SyscallRet::Err(Errno::Ebadf),
                }
            }
        };
        let offset = self.files.get(src_fid).unwrap().offset;
        let size = self.disks[sdisk].fs.size(sino);
        if offset >= size {
            return SyscallOutcome::Done {
                cpu: m.page_fault,
                ret: SyscallRet::Val(0),
            };
        }
        let take = len.min((size - offset) as usize);
        let lblk = offset / bs as u64;
        let mut cpu = base;
        let buf = if let Some(b) = wait_buf {
            debug_assert!(self.cache.io_done(b), "woken before I/O completed");
            b
        } else {
            let Some(pblk) = self.disks[sdisk].fs.bmap(sino, lblk) else {
                return SyscallOutcome::Done {
                    cpu: base,
                    ret: SyscallRet::Err(Errno::Einval),
                };
            };
            let dev = self.disks[sdisk].dev;
            let mut fx = Vec::new();
            let out = self.cache.bread(dev, pblk, bs, &mut fx);
            cpu += self.apply_cache_effects(fx, IoCtx::Process);
            match out {
                BreadOutcome::Hit(b) => b,
                BreadOutcome::Miss(b) if self.cache.io_done(b) => b,
                BreadOutcome::Miss(b) => {
                    self.conts.insert(
                        pid,
                        Cont::MmapFault {
                            src_fid,
                            dst_fid,
                            len,
                            wait_buf: Some(b),
                        },
                    );
                    return SyscallOutcome::Block {
                        cpu,
                        chan: Chan::new(ChanSpace::Buf, b.0 as u64),
                    };
                }
                BreadOutcome::Busy(b) => {
                    self.conts.insert(
                        pid,
                        Cont::MmapFault {
                            src_fid,
                            dst_fid,
                            len,
                            wait_buf: None,
                        },
                    );
                    return SyscallOutcome::Block {
                        cpu,
                        chan: Chan::new(ChanSpace::Buf, b.0 as u64),
                    };
                }
                BreadOutcome::NoBuffers => {
                    self.conts.insert(
                        pid,
                        Cont::MmapFault {
                            src_fid,
                            dst_fid,
                            len,
                            wait_buf: None,
                        },
                    );
                    return SyscallOutcome::Block {
                        cpu,
                        chan: Chan::new(ChanSpace::AnyBuf, 0),
                    };
                }
            }
        };
        let data = {
            let d = self.cache.data(buf);
            let bytes = d.bytes();
            bytes[..take].to_vec()
        };
        let mut fx = Vec::new();
        self.cache.brelse(buf, &mut fx);
        cpu += self.apply_cache_effects(fx, IoCtx::Process);
        self.files.get_mut(src_fid).unwrap().offset += take as u64;

        // The destination side: a copy-on-write fault materialises the
        // block; the data arrives via the user's memcpy (kernel_data).
        let cont = WriteCont {
            fid: dst_fid,
            data,
            done: 0,
            rmw_buf: None,
            kernel_data: true,
        };
        match self.do_write(pid, cont, Dur::ZERO) {
            SyscallOutcome::Done { cpu: c2, ret } => SyscallOutcome::Done {
                cpu: cpu + c2,
                ret: match ret {
                    SyscallRet::Val(_) => SyscallRet::Val(take as i64),
                    e => e,
                },
            },
            SyscallOutcome::Block { cpu: c2, chan } => SyscallOutcome::Block {
                cpu: cpu + c2,
                chan,
            },
            SyscallOutcome::BlockUntil {
                cpu: c2,
                until,
                then,
            } => SyscallOutcome::BlockUntil {
                cpu: cpu + c2,
                until,
                then,
            },
        }
    }
}

// --------------------------------------------------------------------------
// Baseline user programs.
// --------------------------------------------------------------------------

/// The [PCM91] handle-passing copy program: user-driven, copy-free.
pub struct HandleCopy {
    src: String,
    dst: String,
    st: u32,
    src_fd: Option<Fd>,
    dst_fd: Option<Fd>,
    bytes: u64,
}

impl HandleCopy {
    /// A handle-passing copy from `src` to `dst`.
    pub fn new(src: &str, dst: &str) -> HandleCopy {
        HandleCopy {
            src: src.to_string(),
            dst: dst.to_string(),
            st: 0,
            src_fd: None,
            dst_fd: None,
            bytes: 0,
        }
    }

    /// Bytes moved.
    pub fn bytes(&self) -> u64 {
        self.bytes
    }
}

impl Program for HandleCopy {
    fn step(&mut self, ctx: &mut UserCtx) -> Step {
        match self.st {
            0 => {
                self.st = 1;
                Step::Syscall(SyscallReq::Open {
                    path: self.src.clone(),
                    flags: OpenFlags::RDONLY,
                })
            }
            1 => {
                self.src_fd = ctx.take_ret().as_fd();
                if self.src_fd.is_none() {
                    return Step::Exit(1);
                }
                self.st = 2;
                Step::Syscall(SyscallReq::Open {
                    path: self.dst.clone(),
                    flags: OpenFlags::CREATE,
                })
            }
            2 => {
                self.dst_fd = ctx.take_ret().as_fd();
                if self.dst_fd.is_none() {
                    return Step::Exit(1);
                }
                self.st = 3;
                Step::Syscall(SyscallReq::HandleRead {
                    fd: self.src_fd.unwrap(),
                })
            }
            3 => match ctx.take_ret() {
                SyscallRet::Val(0) => {
                    self.st = 5;
                    Step::Syscall(SyscallReq::Fsync(self.dst_fd.unwrap()))
                }
                SyscallRet::Val(handle) if handle > 0 => {
                    self.st = 4;
                    Step::Syscall(SyscallReq::HandleWrite {
                        fd: self.dst_fd.unwrap(),
                        handle,
                    })
                }
                _ => Step::Exit(1),
            },
            4 => match ctx.take_ret() {
                SyscallRet::Val(n) if n > 0 => {
                    self.bytes += n as u64;
                    self.st = 3;
                    Step::Syscall(SyscallReq::HandleRead {
                        fd: self.src_fd.unwrap(),
                    })
                }
                _ => Step::Exit(1),
            },
            5 => {
                ctx.take_ret();
                self.st = 6;
                Step::Syscall(SyscallReq::Close(self.src_fd.take().unwrap()))
            }
            6 => {
                ctx.take_ret();
                self.st = 7;
                Step::Syscall(SyscallReq::Close(self.dst_fd.take().unwrap()))
            }
            7 => {
                ctx.take_ret();
                Step::Exit(0)
            }
            _ => Step::Exit(0),
        }
    }

    fn name(&self) -> &str {
        "handle_copy"
    }
}

/// The mmap-style copy program: fault-driven kernel work plus a user-mode
/// `memcpy` per window.
pub struct MmapCopy {
    src: String,
    dst: String,
    window: usize,
    /// User-mode memcpy cost per window (from the machine profile; the
    /// program cannot see kernel configuration).
    memcpy_cost: Dur,
    st: u32,
    src_fd: Option<Fd>,
    dst_fd: Option<Fd>,
    bytes: u64,
}

impl MmapCopy {
    /// A mapped copy moving `window` bytes per fault round; the caller
    /// supplies the user-mode copy cost per window.
    pub fn new(src: &str, dst: &str, window: usize, memcpy_cost: Dur) -> MmapCopy {
        MmapCopy {
            src: src.to_string(),
            dst: dst.to_string(),
            window,
            memcpy_cost,
            st: 0,
            src_fd: None,
            dst_fd: None,
            bytes: 0,
        }
    }

    /// Bytes moved.
    pub fn bytes(&self) -> u64 {
        self.bytes
    }
}

impl Program for MmapCopy {
    fn step(&mut self, ctx: &mut UserCtx) -> Step {
        match self.st {
            0 => {
                self.st = 1;
                Step::Syscall(SyscallReq::Open {
                    path: self.src.clone(),
                    flags: OpenFlags::RDONLY,
                })
            }
            1 => {
                self.src_fd = ctx.take_ret().as_fd();
                if self.src_fd.is_none() {
                    return Step::Exit(1);
                }
                self.st = 2;
                Step::Syscall(SyscallReq::Open {
                    path: self.dst.clone(),
                    flags: OpenFlags::CREATE,
                })
            }
            2 => {
                self.dst_fd = ctx.take_ret().as_fd();
                if self.dst_fd.is_none() {
                    return Step::Exit(1);
                }
                self.st = 3;
                Step::Syscall(SyscallReq::MmapFault {
                    src: self.src_fd.unwrap(),
                    dst: self.dst_fd.unwrap(),
                    len: self.window,
                })
            }
            3 => match ctx.take_ret() {
                SyscallRet::Val(0) => {
                    self.st = 5;
                    Step::Syscall(SyscallReq::Fsync(self.dst_fd.unwrap()))
                }
                SyscallRet::Val(n) if n > 0 => {
                    self.bytes += n as u64;
                    self.st = 4;
                    // The user-mode memcpy through the mappings.
                    Step::Compute(self.memcpy_cost)
                }
                _ => Step::Exit(1),
            },
            4 => {
                self.st = 3;
                Step::Syscall(SyscallReq::MmapFault {
                    src: self.src_fd.unwrap(),
                    dst: self.dst_fd.unwrap(),
                    len: self.window,
                })
            }
            5 => {
                ctx.take_ret();
                self.st = 6;
                Step::Syscall(SyscallReq::Close(self.src_fd.take().unwrap()))
            }
            6 => {
                ctx.take_ret();
                self.st = 7;
                Step::Syscall(SyscallReq::Close(self.dst_fd.take().unwrap()))
            }
            7 => {
                ctx.take_ret();
                Step::Exit(0)
            }
            _ => Step::Exit(0),
        }
    }

    fn name(&self) -> &str {
        "mmap_copy"
    }
}
