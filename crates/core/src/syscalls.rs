//! System-call execution.
//!
//! Calls run in the calling process's context: their CPU cost becomes a
//! `SyscallCpu` chunk, and calls that must wait either sleep on a channel
//! (with a [`Cont`] recording how to resume) or sleep until a known
//! instant (metadata I/O, device pacing). The read/write paths move real
//! bytes through the buffer cache, charging `copyin`/`copyout` at the
//! machine profile's rates — the costs splice exists to remove.

use kbuf::{BreadOutcome, BufId, GetblkOutcome};
#[allow(unused_imports)]
use kfs as _kfs_reexport_guard;
use kfs::{FileKind, FsError, Ino};
use khw::CopyKind;
use knet::{Datagram, NetErr, SockId};
use kproc::{Chan, ChanSpace, Errno, FcntlCmd, Fd, OpenFlags, Pid, Sig, SyscallReq, SyscallRet};
use ksim::{Dur, SimTime, TraceEvent};

use crate::event::{Event, KWork};
use crate::kernel::{IoCtx, Kernel};
use crate::objects::{CharDev, FileId, FileObj, OpenFile};

/// Result of executing (part of) a system call.
pub(crate) enum SyscallOutcome {
    /// Finished: charge `cpu`, then deliver `ret`.
    Done { cpu: Dur, ret: SyscallRet },
    /// Charge `cpu`, then sleep on `chan`; a [`Cont`] stored by the caller
    /// resumes the call.
    Block { cpu: Dur, chan: Chan },
    /// Charge `cpu`, then sleep until `until`, then perform `then`.
    BlockUntil {
        cpu: Dur,
        until: SimTime,
        then: WakeAction,
    },
}

/// What happens when a timed sleep expires.
pub(crate) enum WakeAction {
    /// Deliver a return value to the program.
    Deliver(SyscallRet),
    /// Resume the system call from this continuation.
    Resume(Cont),
}

/// What happens when the syscall-CPU chunk of the current call finishes.
pub(crate) enum AfterCpu {
    /// Deliver the return value and keep running.
    Deliver(SyscallRet),
    /// Sleep on a channel.
    Sleep(Chan),
    /// Sleep until an instant.
    SleepUntil { until: SimTime, then: WakeAction },
    /// The channel this call was about to sleep on was woken while the
    /// call's CPU chunk was still running (the classic lost-wakeup race,
    /// which real kernels close with `splbio`): re-run the continuation
    /// instead of sleeping.
    Retry,
}

/// Continuations for blocked system calls.
pub(crate) enum Cont {
    /// `read(2)` in progress.
    Read(ReadCont),
    /// `write(2)` in progress.
    Write(WriteCont),
    /// `fsync(2)` waiting for in-flight writes.
    Fsync { fid: FileId },
    /// Synchronous `splice(2)` waiting for its depth-1 legacy-ring entry
    /// to complete.
    SpliceSync { ring: u64, desc: u64 },
    /// `sys_ring_reap` waiting for `min` completions.
    RingReap { ring: u64, min: u32 },
    /// `pause(2)`.
    Pause,
    /// `recv` waiting for a datagram.
    Recv { fid: FileId, max_len: usize },
    /// `accept` waiting for a connection to be carved.
    Accept { fid: FileId },
    /// `send` that hit send-buffer backpressure, parked until the link
    /// drains.
    Send { sock: SockId, data: Vec<u8> },
    /// [PCM91] handle read in progress.
    HandleRead {
        fid: FileId,
        /// Buffer held across a biowait (resume uses it directly).
        wait_buf: Option<BufId>,
    },
    /// Mmap-copy fault window in progress.
    MmapFault {
        src_fid: FileId,
        dst_fid: FileId,
        len: usize,
        /// Buffer held across a biowait (resume uses it directly).
        wait_buf: Option<BufId>,
    },
}

/// In-progress read state.
pub(crate) struct ReadCont {
    pub fid: FileId,
    pub want: usize,
    pub got: Vec<u8>,
    /// Set when blocked in `biowait`: the held buffer plus the slice of it
    /// we were after.
    pub wait_buf: Option<(BufId, usize, usize)>,
    /// When the blocking read was issued (latency accounting).
    pub issued_at: Option<SimTime>,
}

/// In-progress write state.
pub(crate) struct WriteCont {
    pub fid: FileId,
    pub data: Vec<u8>,
    pub done: usize,
    /// Set when blocked reading an existing block for a partial
    /// overwrite.
    pub rmw_buf: Option<(BufId, usize, usize)>,
    /// Data already lives in the kernel (handle/mmap baselines): skip the
    /// `copyin` charge.
    pub kernel_data: bool,
}

use crate::splice_engine::fs_errno;

fn net_errno(e: NetErr) -> Errno {
    match e {
        NetErr::BadSocket => Errno::Ebadf,
        NetErr::PortInUse => Errno::Eaddrinuse,
        NetErr::NotConnected => Errno::Enotconn,
        NetErr::MsgTooBig => Errno::Emsgsize,
        NetErr::NotBound => Errno::Einval,
        NetErr::WouldBlock => Errno::Eagain,
    }
}

impl Kernel {
    fn err(&self, e: Errno) -> SyscallOutcome {
        SyscallOutcome::Done {
            cpu: self.cfg.machine.syscall,
            ret: SyscallRet::Err(e),
        }
    }

    fn fid_of(&self, pid: Pid, fd: Fd) -> Option<FileId> {
        self.files.resolve(pid, fd)
    }

    /// Executes a fresh system call for `pid` at the current time.
    pub(crate) fn exec_syscall(&mut self, pid: Pid, req: SyscallReq) -> SyscallOutcome {
        let base = self.cfg.machine.syscall;
        match req {
            SyscallReq::Open { path, flags } => self.sys_open(pid, &path, flags),
            SyscallReq::Close(fd) => {
                if let Some(extra) = self.close_fd(pid, fd) {
                    SyscallOutcome::Done {
                        cpu: base + extra,
                        ret: SyscallRet::Val(0),
                    }
                } else {
                    self.err(Errno::Ebadf)
                }
            }
            SyscallReq::Read { fd, len } => {
                let Some(fid) = self.fid_of(pid, fd) else {
                    return self.err(Errno::Ebadf);
                };
                let cont = ReadCont {
                    fid,
                    want: len,
                    got: Vec::new(),
                    wait_buf: None,
                    issued_at: None,
                };
                self.do_read(pid, cont, base)
            }
            SyscallReq::Write { fd, data } => {
                let Some(fid) = self.fid_of(pid, fd) else {
                    return self.err(Errno::Ebadf);
                };
                let cont = WriteCont {
                    fid,
                    data,
                    done: 0,
                    rmw_buf: None,
                    kernel_data: false,
                };
                self.do_write(pid, cont, base)
            }
            SyscallReq::Lseek { fd, pos } => {
                let Some(fid) = self.fid_of(pid, fd) else {
                    return self.err(Errno::Ebadf);
                };
                let of = self.files.get_mut(fid).unwrap();
                of.offset = pos;
                of.last_lblk = None;
                SyscallOutcome::Done {
                    cpu: base,
                    ret: SyscallRet::Val(pos as i64),
                }
            }
            SyscallReq::Splice { req } => {
                let (Some(sfid), Some(dfid)) =
                    (self.fid_of(pid, req.src), self.fid_of(pid, req.dst))
                else {
                    // Same consolidated rejection path as endpoint
                    // resolution: counted under splice.rejected.
                    return self.splice_reject(Errno::Ebadf);
                };
                self.sys_splice(pid, sfid, dfid, req.len, req.retry_limit)
            }
            SyscallReq::RingCreate { depth, sigio } => self.sys_ring_create(pid, depth, sigio),
            SyscallReq::RingSubmit { ring, sqes } => self.sys_ring_submit(pid, ring, sqes),
            SyscallReq::RingReap { ring, min } => self.sys_ring_reap(pid, ring, min),
            SyscallReq::Fsync(fd) => {
                let Some(fid) = self.fid_of(pid, fd) else {
                    return self.err(Errno::Ebadf);
                };
                self.do_fsync(pid, fid, base)
            }
            SyscallReq::Fcntl { fd, cmd } => {
                let Some(fid) = self.fid_of(pid, fd) else {
                    return self.err(Errno::Ebadf);
                };
                match cmd {
                    FcntlCmd::SetAsync(on) => {
                        self.files.get_mut(fid).unwrap().fasync = on;
                    }
                }
                SyscallOutcome::Done {
                    cpu: base,
                    ret: SyscallRet::Val(0),
                }
            }
            SyscallReq::Unlink { path } => self.sys_unlink(&path),
            SyscallReq::Link { existing, new } => {
                let (Some((da, pa)), Some((db, pb))) = (
                    self.resolve_disk_path(&existing),
                    self.resolve_disk_path(&new),
                ) else {
                    return self.err(Errno::Enoent);
                };
                if da != db {
                    // Hard links cannot cross filesystems.
                    return self.err(Errno::Einval);
                }
                match self.disks[da].fs.link(&pa, &pb) {
                    Ok(()) => SyscallOutcome::Done {
                        cpu: base + self.cfg.machine.buf_op * 2,
                        ret: SyscallRet::Val(0),
                    },
                    Err(e) => self.err(fs_errno(e)),
                }
            }
            SyscallReq::SetItimer { interval } => {
                if let Some(id) = self.itimer_callouts.remove(&pid) {
                    self.callout.cancel(id);
                }
                if interval.is_zero() {
                    self.procs.must_mut(pid).itimer = None;
                } else {
                    self.procs.must_mut(pid).itimer = Some(interval);
                    let ticks = self.dur_to_ticks(interval);
                    let id = self
                        .callout
                        .schedule(self.tick, ticks, KWork::ItimerFire { pid });
                    self.itimer_callouts.insert(pid, id);
                }
                SyscallOutcome::Done {
                    cpu: base,
                    ret: SyscallRet::Val(0),
                }
            }
            SyscallReq::Pause => {
                if !self.procs.must(pid).pending_sigs.is_empty() {
                    // A signal is already pending: return at once (the
                    // signals reach the program with this step's context).
                    return SyscallOutcome::Done {
                        cpu: base,
                        ret: SyscallRet::Val(0),
                    };
                }
                self.conts.insert(pid, Cont::Pause);
                SyscallOutcome::Block {
                    cpu: base,
                    chan: Chan::new(ChanSpace::Pause, pid.0 as u64),
                }
            }
            SyscallReq::Sigaction { sig, catch } => {
                let p = self.procs.must_mut(pid);
                p.catches.retain(|s| *s != sig);
                if catch {
                    p.catches.push(sig);
                }
                SyscallOutcome::Done {
                    cpu: base,
                    ret: SyscallRet::Val(0),
                }
            }
            SyscallReq::GetTime => SyscallOutcome::Done {
                cpu: base,
                ret: SyscallRet::Time(self.q.now()),
            },
            SyscallReq::Socket => {
                let sock = self.net.socket(1);
                let (fd, _) = self.files.open(
                    pid,
                    OpenFile {
                        obj: FileObj::Sock { sock },
                        offset: 0,
                        fasync: false,
                        readable: true,
                        writable: true,
                        refs: 1,
                        last_lblk: None,
                    },
                );
                SyscallOutcome::Done {
                    cpu: base,
                    ret: SyscallRet::NewFd(fd),
                }
            }
            SyscallReq::Bind { fd, port } => {
                let Some(sock) = self.sock_of(pid, fd) else {
                    return self.err(Errno::Ebadf);
                };
                match self.net.bind(sock, port) {
                    Ok(()) => SyscallOutcome::Done {
                        cpu: base,
                        ret: SyscallRet::Val(0),
                    },
                    Err(e) => self.err(net_errno(e)),
                }
            }
            SyscallReq::Connect { fd, addr } => {
                let Some(sock) = self.sock_of(pid, fd) else {
                    return self.err(Errno::Ebadf);
                };
                match self.net.connect(
                    sock,
                    knet::NetAddr {
                        host: addr.host,
                        port: addr.port,
                    },
                ) {
                    Ok(()) => SyscallOutcome::Done {
                        cpu: base,
                        ret: SyscallRet::Val(0),
                    },
                    Err(e) => self.err(net_errno(e)),
                }
            }
            SyscallReq::Listen { fd, backlog } => {
                let Some(sock) = self.sock_of(pid, fd) else {
                    return self.err(Errno::Ebadf);
                };
                match self.net.listen(sock, backlog) {
                    Ok(()) => SyscallOutcome::Done {
                        cpu: base,
                        ret: SyscallRet::Val(0),
                    },
                    Err(e) => self.err(net_errno(e)),
                }
            }
            SyscallReq::Accept { fd } => {
                let Some(fid) = self.fid_of(pid, fd) else {
                    return self.err(Errno::Ebadf);
                };
                self.do_accept(pid, fid, base)
            }
            SyscallReq::Send { fd, data } => {
                let Some(sock) = self.sock_of(pid, fd) else {
                    return self.err(Errno::Ebadf);
                };
                self.do_send(sock, data, base)
            }
            SyscallReq::Recv { fd, max_len } => {
                let Some(fid) = self.fid_of(pid, fd) else {
                    return self.err(Errno::Ebadf);
                };
                self.do_recv(pid, fid, max_len, base)
            }
            SyscallReq::Fstat(fd) => {
                let Some(fid) = self.fid_of(pid, fd) else {
                    return self.err(Errno::Ebadf);
                };
                match self.files.get(fid).unwrap().obj {
                    FileObj::File { disk, ino } => SyscallOutcome::Done {
                        cpu: base,
                        ret: SyscallRet::Val(self.disks[disk].fs.size(ino) as i64),
                    },
                    _ => SyscallOutcome::Done {
                        cpu: base,
                        ret: SyscallRet::Val(0),
                    },
                }
            }
            SyscallReq::HandleRead { fd } => {
                let Some(fid) = self.fid_of(pid, fd) else {
                    return self.err(Errno::Ebadf);
                };
                self.do_handle_read(pid, fid, base)
            }
            SyscallReq::HandleWrite { fd, handle } => {
                let Some(fid) = self.fid_of(pid, fd) else {
                    return self.err(Errno::Ebadf);
                };
                self.do_handle_write(pid, fid, handle, base)
            }
            SyscallReq::MmapFault { src, dst, len } => {
                let (Some(sfid), Some(dfid)) = (self.fid_of(pid, src), self.fid_of(pid, dst))
                else {
                    return self.err(Errno::Ebadf);
                };
                self.do_mmap_fault(pid, sfid, dfid, len)
            }
        }
    }

    fn sock_of(&self, pid: Pid, fd: Fd) -> Option<SockId> {
        let fid = self.fid_of(pid, fd)?;
        match self.files.get(fid)?.obj {
            FileObj::Sock { sock } => Some(sock),
            _ => None,
        }
    }

    /// Resumes a blocked call after a wakeup.
    pub(crate) fn resume_cont(&mut self, pid: Pid, cont: Cont) -> SyscallOutcome {
        match cont {
            Cont::Read(c) => self.do_read(pid, c, Dur::ZERO),
            Cont::Write(c) => self.do_write(pid, c, Dur::ZERO),
            Cont::Fsync { fid } => self.do_fsync(pid, fid, Dur::ZERO),
            Cont::SpliceSync { ring, desc } => self.resume_splice_sync(pid, ring, desc),
            Cont::RingReap { ring, min } => self.resume_ring_reap(pid, ring, min),
            Cont::Pause => SyscallOutcome::Done {
                cpu: self.cfg.machine.buf_op,
                ret: SyscallRet::Val(0),
            },
            Cont::Recv { fid, max_len } => self.do_recv(pid, fid, max_len, Dur::ZERO),
            Cont::Accept { fid } => self.do_accept(pid, fid, Dur::ZERO),
            Cont::Send { sock, data } => self.do_send(sock, data, Dur::ZERO),
            Cont::HandleRead { fid, wait_buf } => {
                self.do_handle_read_resume(pid, fid, wait_buf, Dur::ZERO)
            }
            Cont::MmapFault {
                src_fid,
                dst_fid,
                len,
                wait_buf,
            } => self.do_mmap_fault_resume(pid, src_fid, dst_fid, len, wait_buf),
        }
    }

    // ----- open / close / unlink -------------------------------------------

    /// Resolves a path to its disk index; the remainder is an fs path.
    pub(crate) fn resolve_disk_path(&self, path: &str) -> Option<(usize, String)> {
        let rest = path.strip_prefix('/')?;
        let (disk_name, sub) = match rest.split_once('/') {
            Some((d, s)) => (d, s),
            None => (rest, ""),
        };
        let idx = self.disks.iter().position(|d| d.name == disk_name)?;
        Some((idx, format!("/{sub}")))
    }

    fn sys_open(&mut self, pid: Pid, path: &str, flags: OpenFlags) -> SyscallOutcome {
        let base = self.cfg.machine.syscall;
        let namei = self.cfg.machine.buf_op * (path.matches('/').count() as u64 + 1);

        // Device namespace.
        if path.starts_with("/dev/") {
            let Some(cdev) = self.cdevs.iter().position(|c| c.path == path) else {
                return self.err(Errno::Enoent);
            };
            let (fd, _) = self.files.open(
                pid,
                OpenFile {
                    obj: FileObj::Chr { cdev },
                    offset: 0,
                    fasync: false,
                    readable: flags.read || !flags.write,
                    writable: flags.write,
                    refs: 1,
                    last_lblk: None,
                },
            );
            return SyscallOutcome::Done {
                cpu: base + namei,
                ret: SyscallRet::NewFd(fd),
            };
        }

        let Some((disk, sub)) = self.resolve_disk_path(path) else {
            return self.err(Errno::Enoent);
        };
        let ino = match self.disks[disk].fs.lookup(&sub) {
            Ok(ino) => {
                if self.disks[disk].fs.stat(ino).map(|s| s.0) == Some(FileKind::Dir) {
                    return self.err(Errno::Eisdir);
                }
                if flags.trunc && flags.write {
                    self.truncate_with_purge(disk, ino);
                }
                ino
            }
            Err(FsError::NotFound) if flags.create => match self.disks[disk].fs.create(&sub) {
                Ok(ino) => ino,
                Err(e) => return self.err(fs_errno(e)),
            },
            Err(e) => return self.err(fs_errno(e)),
        };
        let (fd, _) = self.files.open(
            pid,
            OpenFile {
                obj: FileObj::File { disk, ino },
                offset: 0,
                fasync: false,
                readable: flags.read || !flags.write,
                writable: flags.write,
                refs: 1,
                last_lblk: None,
            },
        );
        SyscallOutcome::Done {
            cpu: base + namei,
            ret: SyscallRet::NewFd(fd),
        }
    }

    /// Frees a file's blocks, first dropping their cached copies. Dirty
    /// copies are discarded with the file; busy ones (in-flight I/O or a
    /// concurrent splice) are detached and die on release.
    pub(crate) fn truncate_with_purge(&mut self, disk: usize, ino: Ino) {
        let blocks: Vec<u64> = self.disks[disk]
            .fs
            .block_map(ino)
            .into_iter()
            .flatten()
            .collect();
        let dev = self.disks[disk].dev;
        let (purged, detached) = self.cache.purge_blocks(dev, blocks.into_iter());
        self.stats.add("cache.trunc_purged", purged as u64);
        self.stats.add("cache.trunc_detached", detached as u64);
        self.disks[disk].fs.truncate(ino).expect("inode exists");
    }

    fn sys_unlink(&mut self, path: &str) -> SyscallOutcome {
        let Some((disk, sub)) = self.resolve_disk_path(path) else {
            return self.err(Errno::Enoent);
        };
        let ino = match self.disks[disk].fs.lookup(&sub) {
            Ok(ino) => ino,
            Err(e) => return self.err(fs_errno(e)),
        };
        if self.disks[disk].fs.stat(ino).map(|s| s.0) == Some(FileKind::File) {
            self.truncate_with_purge(disk, ino);
        }
        match self.disks[disk].fs.unlink(&sub) {
            Ok(()) => SyscallOutcome::Done {
                cpu: self.cfg.machine.syscall + self.cfg.machine.buf_op * 2,
                ret: SyscallRet::Val(0),
            },
            Err(e) => self.err(fs_errno(e)),
        }
    }

    /// Releases a descriptor; used by `close(2)` and by exit cleanup.
    /// Returns `None` for a bad fd, otherwise the extra simulated CPU
    /// the close incurred (the observability span commit, on the last
    /// reference to a server-side connection socket).
    pub(crate) fn close_fd(&mut self, pid: Pid, fd: Fd) -> Option<Dur> {
        match self.files.close(pid, fd) {
            None => None,
            Some(None) => Some(Dur::ZERO),
            Some(Some(of)) => {
                let mut extra = Dur::ZERO;
                if let FileObj::Sock { sock } = of.obj {
                    // Closing the source of an active splice is its EOF:
                    // the ring in-flight table completes the descriptor so
                    // every entry path hears about it (sync wakeup, SIGIO,
                    // or CQE). The splice completion lands its outcome on
                    // the staged span before the span closes.
                    self.splice_sock_eof(sock);
                    extra = self.obs_close(sock.0);
                    let _ = self.net.close(sock);
                }
                Some(extra)
            }
        }
    }

    // ----- read -----------------------------------------------------------------

    fn do_read(&mut self, pid: Pid, c: ReadCont, base: Dur) -> SyscallOutcome {
        let mut cpu = base;
        let Some(of) = self.files.get(c.fid) else {
            return self.err(Errno::Ebadf);
        };
        if !of.readable {
            return self.err(Errno::Ebadf);
        }
        match of.obj {
            FileObj::File { disk, ino } => self.file_read(pid, c, cpu, disk, ino),
            FileObj::Chr { cdev } => {
                let now = self.q.now();
                match &mut self.cdevs[cdev].dev {
                    CharDev::Fb(fb) => {
                        let data = fb.read(now, c.want);
                        cpu += self.cfg.machine.copy_cost(CopyKind::Copyout, c.want);
                        self.stats.add("copy.copyout_bytes", c.want as u64);
                        SyscallOutcome::Done {
                            cpu,
                            ret: SyscallRet::Data(data),
                        }
                    }
                    _ => self.err(Errno::Enotsup),
                }
            }
            FileObj::Sock { .. } => self.do_recv(pid, c.fid, c.want, cpu),
        }
    }

    fn file_read(
        &mut self,
        pid: Pid,
        mut c: ReadCont,
        mut cpu: Dur,
        disk: usize,
        ino: Ino,
    ) -> SyscallOutcome {
        let bs = self.cfg.block_size as usize;
        let dev = self.disks[disk].dev;
        let m = self.cfg.machine.clone();

        // Resumed from biowait? Finish the block we were waiting for.
        if let Some((buf, boff, take)) = c.wait_buf.take() {
            debug_assert!(self.cache.io_done(buf), "woken before I/O completed");
            if let Some(at) = c.issued_at.take() {
                self.kstat.read_wait.record(self.q.now().since(at).as_ns());
            }
            let data = self.cache.data(buf);
            c.got.extend_from_slice(&data.bytes()[boff..boff + take]);
            cpu += m.copy_cost(CopyKind::Copyout, take);
            self.stats.add("copy.copyout_bytes", take as u64);
            let mut fx = Vec::new();
            self.cache.brelse(buf, &mut fx);
            let sync = self.apply_cache_effects(fx, IoCtx::Process);
            cpu += sync;
            let of = self.files.get_mut(c.fid).unwrap();
            of.offset += take as u64;
        }

        loop {
            let of = self.files.get(c.fid).unwrap();
            let offset = of.offset;
            let size = self.disks[disk].fs.size(ino);
            if c.got.len() >= c.want || offset >= size {
                return SyscallOutcome::Done {
                    cpu,
                    ret: SyscallRet::Data(std::mem::take(&mut c.got)),
                };
            }
            let lblk = offset / bs as u64;
            let boff = (offset % bs as u64) as usize;
            let take = (bs - boff)
                .min(c.want - c.got.len())
                .min((size - offset) as usize);

            let Some(pblk) = self.disks[disk].fs.bmap(ino, lblk) else {
                // Hole: zeros, no device traffic.
                c.got.extend(std::iter::repeat_n(0, take));
                cpu += m.copy_cost(CopyKind::Copyout, take);
                self.stats.add("copy.copyout_bytes", take as u64);
                let of = self.files.get_mut(c.fid).unwrap();
                of.offset += take as u64;
                of.last_lblk = Some(lblk);
                continue;
            };

            // Sequential read-ahead (SCSI only; the RAM disk has no
            // latency to hide and read-ahead would only mis-attribute its
            // copy cost).
            let sequential =
                lblk == 0 || of.last_lblk == Some(lblk - 1) || of.last_lblk == Some(lblk);
            if sequential && !self.disks[disk].kind.is_ram() {
                if let Some(ra_pblk) = self.disks[disk].fs.bmap(ino, lblk + 1) {
                    let mut fx = Vec::new();
                    if self
                        .cache
                        .start_readahead(dev, ra_pblk, bs, &mut fx)
                        .is_some()
                    {
                        cpu += m.buf_op;
                        self.stats.bump("read.readahead");
                    }
                    self.apply_cache_effects(fx, IoCtx::Kernel);
                }
            }

            let mut fx = Vec::new();
            let out = self.cache.bread(dev, pblk, bs, &mut fx);
            let sync = self.apply_cache_effects(fx, IoCtx::Process);
            cpu += sync + m.buf_op;
            match out {
                BreadOutcome::Hit(buf) => {
                    let data = self.cache.data(buf);
                    c.got.extend_from_slice(&data.bytes()[boff..boff + take]);
                    drop(data);
                    cpu += m.copy_cost(CopyKind::Copyout, take);
                    self.stats.add("copy.copyout_bytes", take as u64);
                    let mut fx = Vec::new();
                    self.cache.brelse(buf, &mut fx);
                    cpu += self.apply_cache_effects(fx, IoCtx::Process);
                    let of = self.files.get_mut(c.fid).unwrap();
                    of.offset += take as u64;
                    of.last_lblk = Some(lblk);
                }
                BreadOutcome::Miss(buf) => {
                    self.files.get_mut(c.fid).unwrap().last_lblk = Some(lblk);
                    if self.cache.io_done(buf) {
                        // RAM disk completed synchronously; use it now.
                        let data = self.cache.data(buf);
                        c.got.extend_from_slice(&data.bytes()[boff..boff + take]);
                        drop(data);
                        cpu += m.copy_cost(CopyKind::Copyout, take);
                        self.stats.add("copy.copyout_bytes", take as u64);
                        let mut fx = Vec::new();
                        self.cache.brelse(buf, &mut fx);
                        cpu += self.apply_cache_effects(fx, IoCtx::Process);
                        let of = self.files.get_mut(c.fid).unwrap();
                        of.offset += take as u64;
                    } else {
                        // biowait: sleep until the interrupt side wakes us.
                        c.wait_buf = Some((buf, boff, take));
                        c.issued_at = Some(self.q.now());
                        let chan = Chan::new(ChanSpace::Buf, buf.0 as u64);
                        self.conts.insert(pid, Cont::Read(c));
                        return SyscallOutcome::Block { cpu, chan };
                    }
                }
                BreadOutcome::Busy(buf) => {
                    let chan = Chan::new(ChanSpace::Buf, buf.0 as u64);
                    self.conts.insert(pid, Cont::Read(c));
                    return SyscallOutcome::Block { cpu, chan };
                }
                BreadOutcome::NoBuffers => {
                    self.conts.insert(pid, Cont::Read(c));
                    return SyscallOutcome::Block {
                        cpu,
                        chan: Chan::new(ChanSpace::AnyBuf, 0),
                    };
                }
            }
        }
    }

    // ----- write -----------------------------------------------------------------

    pub(crate) fn do_write(&mut self, pid: Pid, c: WriteCont, base: Dur) -> SyscallOutcome {
        let Some(of) = self.files.get(c.fid) else {
            return self.err(Errno::Ebadf);
        };
        if !of.writable {
            return self.err(Errno::Ebadf);
        }
        match of.obj {
            FileObj::File { disk, ino } => self.file_write(pid, c, base, disk, ino),
            FileObj::Chr { cdev } => self.cdev_write(pid, c, base, cdev),
            FileObj::Sock { sock } => self.do_send(sock, c.data, base),
        }
    }

    fn file_write(
        &mut self,
        pid: Pid,
        mut c: WriteCont,
        mut cpu: Dur,
        disk: usize,
        ino: Ino,
    ) -> SyscallOutcome {
        let bs = self.cfg.block_size as usize;
        let dev = self.disks[disk].dev;
        let m = self.cfg.machine.clone();

        // Resumed from a read-modify-write biowait?
        if let Some((buf, boff, take)) = c.rmw_buf.take() {
            debug_assert!(self.cache.io_done(buf));
            cpu += self.finish_block_write(&mut c, buf, boff, take, disk, ino);
        }

        loop {
            if c.done >= c.data.len() {
                return SyscallOutcome::Done {
                    cpu,
                    ret: SyscallRet::Val(c.done as i64),
                };
            }
            let of = self.files.get(c.fid).unwrap();
            let offset = of.offset;
            let lblk = offset / bs as u64;
            let boff = (offset % bs as u64) as usize;
            let take = (bs - boff).min(c.data.len() - c.done);

            let existed = self.disks[disk].fs.bmap(ino, lblk).is_some();
            let pblk = match self.disks[disk].fs.bmap_alloc(ino, lblk) {
                Ok(p) => p,
                Err(e) => {
                    return if c.done > 0 {
                        SyscallOutcome::Done {
                            cpu,
                            ret: SyscallRet::Val(c.done as i64),
                        }
                    } else {
                        self.err(fs_errno(e))
                    };
                }
            };
            cpu += m.buf_op;
            let full = boff == 0 && take == bs;

            if !full && existed {
                // Partial overwrite of existing data: read-modify-write.
                let mut fx = Vec::new();
                let out = self.cache.bread(dev, pblk, bs, &mut fx);
                cpu += self.apply_cache_effects(fx, IoCtx::Process) + m.buf_op;
                match out {
                    BreadOutcome::Hit(buf) => {
                        cpu += self.finish_block_write(&mut c, buf, boff, take, disk, ino);
                    }
                    BreadOutcome::Miss(buf) => {
                        if self.cache.io_done(buf) {
                            cpu += self.finish_block_write(&mut c, buf, boff, take, disk, ino);
                        } else {
                            c.rmw_buf = Some((buf, boff, take));
                            let chan = Chan::new(ChanSpace::Buf, buf.0 as u64);
                            self.conts.insert(pid, Cont::Write(c));
                            return SyscallOutcome::Block { cpu, chan };
                        }
                    }
                    BreadOutcome::Busy(buf) => {
                        let chan = Chan::new(ChanSpace::Buf, buf.0 as u64);
                        self.conts.insert(pid, Cont::Write(c));
                        return SyscallOutcome::Block { cpu, chan };
                    }
                    BreadOutcome::NoBuffers => {
                        self.conts.insert(pid, Cont::Write(c));
                        return SyscallOutcome::Block {
                            cpu,
                            chan: Chan::new(ChanSpace::AnyBuf, 0),
                        };
                    }
                }
                continue;
            }

            // Full block, or a fresh block (zero-filled in memory; the
            // allocating bmap skipped the on-disk zero-fill, §5.2).
            let mut fx = Vec::new();
            let out = self.cache.getblk(dev, pblk, bs, &mut fx);
            cpu += self.apply_cache_effects(fx, IoCtx::Process);
            match out {
                GetblkOutcome::Held(buf) => {
                    if !full {
                        // Fresh partial block: clear the buffer before the
                        // partial copyin.
                        self.cache.data(buf).bytes_mut().fill(0);
                    }
                    cpu += self.finish_block_write(&mut c, buf, boff, take, disk, ino);
                }
                GetblkOutcome::Busy(buf) => {
                    let chan = Chan::new(ChanSpace::Buf, buf.0 as u64);
                    self.conts.insert(pid, Cont::Write(c));
                    return SyscallOutcome::Block { cpu, chan };
                }
                GetblkOutcome::NoBuffers => {
                    self.conts.insert(pid, Cont::Write(c));
                    return SyscallOutcome::Block {
                        cpu,
                        chan: Chan::new(ChanSpace::AnyBuf, 0),
                    };
                }
            }
        }
    }

    /// Copies the user data into a held buffer and writes it out (async
    /// for full sequential blocks, delayed otherwise). Returns the CPU
    /// charged.
    fn finish_block_write(
        &mut self,
        c: &mut WriteCont,
        buf: BufId,
        boff: usize,
        take: usize,
        disk: usize,
        ino: Ino,
    ) -> Dur {
        let m = self.cfg.machine.clone();
        let mut cpu = if c.kernel_data {
            // Handle/mmap baselines: the data never visited user space.
            m.buf_op
        } else {
            self.stats.add("copy.copyin_bytes", take as u64);
            m.copy_cost(CopyKind::Copyin, take)
        };
        {
            let data = self.cache.data(buf);
            let mut bytes = data.bytes_mut();
            bytes[boff..boff + take].copy_from_slice(&c.data[c.done..c.done + take]);
        }
        let full = boff == 0 && take == self.cfg.block_size as usize;
        let mut fx = Vec::new();
        if full {
            // Write-behind: full blocks go to the device asynchronously.
            self.cache.bawrite(buf, &mut fx);
        } else {
            self.cache.bdwrite(buf, &mut fx);
        }
        cpu += self.apply_cache_effects(fx, IoCtx::Process);

        c.done += take;
        let of = self.files.get_mut(c.fid).unwrap();
        of.offset += take as u64;
        let new_size = of.offset;
        let fs = &mut self.disks[disk].fs;
        if new_size > fs.size(ino) {
            fs.set_size(ino, new_size);
        }
        cpu
    }

    fn cdev_write(
        &mut self,
        _pid: Pid,
        mut c: WriteCont,
        base: Dur,
        cdev: usize,
    ) -> SyscallOutcome {
        let now = self.q.now();
        let len = c.data.len() - c.done;
        let copy = self.cfg.machine.copy_cost(CopyKind::Copyin, len);
        match &mut self.cdevs[cdev].dev {
            CharDev::Audio(dac) => {
                let took = dac.write_some(now, len);
                if took > 0 {
                    self.stats.add("copy.copyin_bytes", took as u64);
                    c.done += took;
                }
                let copied = self.cfg.machine.copy_cost(CopyKind::Copyin, took.max(1));
                if c.done == c.data.len() {
                    SyscallOutcome::Done {
                        cpu: base + copied,
                        ret: SyscallRet::Val(c.done as i64),
                    }
                } else {
                    let CharDev::Audio(dac) = &mut self.cdevs[cdev].dev else {
                        unreachable!()
                    };
                    let at = dac.time_for_space(now, c.data.len() - c.done);
                    SyscallOutcome::BlockUntil {
                        cpu: base + copied,
                        until: at,
                        then: WakeAction::Resume(Cont::Write(c)),
                    }
                }
            }
            CharDev::Video(v) => {
                v.write(now, len);
                self.stats.add("copy.copyin_bytes", len as u64);
                c.done += len;
                SyscallOutcome::Done {
                    cpu: base + copy,
                    ret: SyscallRet::Val(c.done as i64),
                }
            }
            CharDev::Fb(_) => self.err(Errno::Enotsup),
        }
    }

    // ----- fsync -----------------------------------------------------------------

    fn do_fsync(&mut self, pid: Pid, fid: FileId, base: Dur) -> SyscallOutcome {
        let Some(of) = self.files.get(fid) else {
            return self.err(Errno::Ebadf);
        };
        let FileObj::File { disk, ino } = of.obj else {
            return self.err(Errno::Einval);
        };
        let mut cpu = base;
        let m = self.cfg.machine.clone();
        let dev = self.disks[disk].dev;

        // Phase 1: push every dirty block of this device to the medium.
        let dirty = self.cache.dirty_bufs(dev);
        for buf in dirty {
            if !self.cache.claim_for_flush(buf) {
                continue;
            }
            let mut fx = Vec::new();
            self.cache.bawrite(buf, &mut fx);
            cpu += self.apply_cache_effects(fx, IoCtx::Process) + m.buf_op;
        }
        if self.disks[disk].write_inflight > 0 {
            self.conts.insert(pid, Cont::Fsync { fid });
            return SyscallOutcome::Block {
                cpu,
                chan: Chan::new(ChanSpace::Fsync, disk as u64),
            };
        }

        // Phase 2: metadata writeback, charged as timed device traffic.
        let unit = &mut self.disks[disk];
        let io = {
            let (kind, fs) = (&mut unit.kind, &mut unit.fs);
            fs.sync_inode(kind.store_mut(), ino)
        };
        let meta = self.meta_io_time(disk, io);
        if self.disks[disk].kind.is_ram() {
            // RAM-disk metadata is a CPU copy in the caller's context.
            SyscallOutcome::Done {
                cpu: cpu + meta,
                ret: SyscallRet::Val(0),
            }
        } else if meta.is_zero() {
            SyscallOutcome::Done {
                cpu,
                ret: SyscallRet::Val(0),
            }
        } else {
            SyscallOutcome::BlockUntil {
                cpu,
                until: self.q.now() + meta,
                then: WakeAction::Deliver(SyscallRet::Val(0)),
            }
        }
    }

    // ----- sockets ----------------------------------------------------------------

    fn do_send(&mut self, sock: SockId, data: Vec<u8>, base: Dur) -> SyscallOutcome {
        let now = self.q.now();
        let len = data.len();
        match self.net.send(now, sock, len) {
            Ok(tx) => {
                let cpu = base
                    + self.cfg.machine.udp_packet
                    + self.cfg.machine.copy_cost(CopyKind::Net, len);
                self.stats.add("copy.net_bytes", len as u64);
                // A user-space relay serves its connection with send(2):
                // accepted bytes land on the staged request span.
                self.obs.note_transfer(sock.0, len as u64, None);
                if let Some(dst) = tx.dst {
                    self.trace.emit(now, || TraceEvent::NetSend {
                        sock: sock.0,
                        len: len as u32,
                    });
                    let src = self.net.source_addr(sock).expect("socket exists");
                    self.q.schedule(
                        tx.arrival.max(now),
                        Event::NetDeliver {
                            dst,
                            dgram: Datagram {
                                src,
                                src_sock: sock,
                                data,
                            },
                        },
                    );
                } else {
                    self.stats.bump(match tx.gone {
                        Some(knet::TxGone::Lost) => "net.tx_lost",
                        _ => "net.tx_no_dst",
                    });
                    self.trace.emit(now, || TraceEvent::NetDrop {
                        sock: sock.0,
                        len: len as u32,
                    });
                }
                SyscallOutcome::Done {
                    cpu,
                    ret: SyscallRet::Val(len as i64),
                }
            }
            // Send buffer full: park the caller until the link drains
            // enough to fit the datagram, then re-run the send.
            Err(NetErr::WouldBlock) => {
                self.stats.bump("net.snd_blocked");
                let ready = self.net.link_ready_at(now, sock, len);
                let until = ready.max(now + Dur::from_us(1));
                SyscallOutcome::BlockUntil {
                    cpu: base,
                    until,
                    then: WakeAction::Resume(Cont::Send { sock, data }),
                }
            }
            Err(e) => self.err(net_errno(e)),
        }
    }

    fn do_accept(&mut self, pid: Pid, fid: FileId, base: Dur) -> SyscallOutcome {
        let Some(of) = self.files.get(fid) else {
            return self.err(Errno::Ebadf);
        };
        let FileObj::Sock { sock } = of.obj else {
            return self.err(Errno::Ebadf);
        };
        match self.net.accept(sock) {
            Ok(Some(conn)) => {
                let (fd, _) = self.files.open(
                    pid,
                    OpenFile {
                        obj: FileObj::Sock { sock: conn },
                        offset: 0,
                        fasync: false,
                        readable: true,
                        writable: true,
                        refs: 1,
                        last_lblk: None,
                    },
                );
                // Stage the request span: accept is the span's birth,
                // and the current trace seq is its exemplar link.
                let seq = self.trace.emitted();
                let obs_cost = self.obs.note_accept(self.q.now(), conn.0, seq);
                SyscallOutcome::Done {
                    cpu: base + self.cfg.machine.udp_packet + obs_cost,
                    ret: SyscallRet::NewFd(fd),
                }
            }
            Ok(None) => {
                self.conts.insert(pid, Cont::Accept { fid });
                SyscallOutcome::Block {
                    cpu: base,
                    chan: Chan::new(ChanSpace::Accept, sock.0 as u64),
                }
            }
            Err(e) => self.err(net_errno(e)),
        }
    }

    fn do_recv(&mut self, pid: Pid, fid: FileId, max_len: usize, base: Dur) -> SyscallOutcome {
        let Some(of) = self.files.get(fid) else {
            return self.err(Errno::Ebadf);
        };
        let FileObj::Sock { sock } = of.obj else {
            return self.err(Errno::Ebadf);
        };
        if self.net.rcv_ready(sock) {
            let d = self.net.recv(sock).expect("socket exists").unwrap();
            let n = d.data.len().min(max_len);
            let cpu =
                base + self.cfg.machine.udp_packet + self.cfg.machine.copy_cost(CopyKind::Net, n);
            self.stats.add("copy.net_bytes", n as u64);
            return SyscallOutcome::Done {
                cpu,
                ret: SyscallRet::Data(d.data[..n].to_vec()),
            };
        }
        self.conts.insert(pid, Cont::Recv { fid, max_len });
        SyscallOutcome::Block {
            cpu: base,
            chan: Chan::new(ChanSpace::SockRecv, sock.0 as u64),
        }
    }

    /// Bottom half of datagram arrival: enqueue into the socket, then
    /// either feed a socket-sourced splice or wake sleeping receivers.
    pub(crate) fn net_rx(&mut self, dst: SockId, dgram: Datagram) {
        let now = self.q.now();
        let len = dgram.data.len() as u32;
        match self.net.deliver(dst, dgram) {
            knet::DeliverOutcome::Queued { sock } => {
                self.trace
                    .emit(now, || TraceEvent::NetDeliver { sock: sock.0, len });
                if !self.splice_sock_feed(sock) {
                    self.wakeup(Chan::new(ChanSpace::SockRecv, sock.0 as u64));
                }
            }
            knet::DeliverOutcome::NewConn { sock } => {
                self.stats.bump("net.conns");
                self.trace
                    .emit(now, || TraceEvent::NetDeliver { sock: sock.0, len });
                self.wakeup(Chan::new(ChanSpace::Accept, dst.0 as u64));
            }
            knet::DeliverOutcome::Dropped { reason } => {
                self.stats.bump("net.rx_dropped");
                self.stats.bump(match reason {
                    knet::DropReason::NoReceiver => "net.rx_no_dst",
                    knet::DropReason::RcvFull => "net.rx_rcv_full",
                    knet::DropReason::Backlog => "net.rx_backlog",
                });
                self.trace
                    .emit(now, || TraceEvent::NetDrop { sock: dst.0, len });
            }
        }
    }

    /// Posts `SIGIO` to a process (splice completion).
    pub(crate) fn post_sigio(&mut self, pid: Pid) {
        self.post_signal(pid, Sig::Io);
    }
}
