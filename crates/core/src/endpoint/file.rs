//! File endpoint backend: the `kfs`/`kbuf` glue.
//!
//! Block **source**: the §5.2 `bmap` walk builds the physical block
//! table at descriptor-build time, and reads are issued with
//! `bread_call` (§5.2.1) so the completion interrupt drives the engine.
//!
//! Block **sink**: the allocating `bmap` maps destination blocks up
//! front, and the write side allocates a buffer *header* whose data
//! pointer aliases the read buffer's data area — `bawrite` with no
//! cache-to-cache copy (§5.2.2).
//!
//! Stream **sink**: byte chunks append through `getblk`, zero-filling
//! fresh partial blocks, with `bawrite` for full blocks and delayed
//! writes for partial ones.

use kbuf::{BreadOutcome, SpliceRef};
use kfs::Ino;
use kproc::{Errno, WorkClass};
use ksim::{Dur, TraceEvent};

use crate::endpoint::ReadPlan;
use crate::event::KWork;
use crate::kernel::{IoCtx, Kernel};
use crate::splice_engine::fs_errno;

impl Kernel {
    /// §5.2: "The entire list of all physical block numbers comprising
    /// the source file is determined by successive calls to bmap()."
    /// Holes are not spliceable — there is no source block to read and
    /// share — so they reject with `EINVAL`.
    pub(crate) fn prepare_file_source(
        &mut self,
        disk: usize,
        ino: Ino,
        offset: u64,
        total: u64,
    ) -> Result<ReadPlan, Errno> {
        let bs = self.cfg.block_size as u64;
        let first_boff = (offset % bs) as usize;
        let first_lblk = offset / bs;
        let nblocks = ((first_boff as u64 + total).div_ceil(bs)) as usize;
        let mut src_map = Vec::with_capacity(nblocks);
        let mut src_lens = Vec::with_capacity(nblocks);
        let mut remaining = total;
        for i in 0..nblocks {
            let Some(pblk) = self.disks[disk].fs.bmap(ino, first_lblk + i as u64) else {
                return Err(Errno::Einval);
            };
            src_map.push(pblk);
            let boff = if i == 0 { first_boff } else { 0 };
            let take = ((bs as usize) - boff).min(remaining as usize);
            src_lens.push(take);
            remaining -= take as u64;
        }
        debug_assert_eq!(remaining, 0);
        Ok(ReadPlan::Mapped {
            src_map,
            src_lens,
            first_boff,
        })
    }

    /// Destination mapping via the allocating bmap (§5.2: "a special
    /// version of bmap() is used … which avoids delayed-writes of
    /// freshly allocated, zero-filled blocks").
    pub(crate) fn prepare_file_sink(
        &mut self,
        disk: usize,
        ino: Ino,
        dst_off: u64,
        nblocks: usize,
        total: u64,
    ) -> Result<Vec<u64>, Errno> {
        let bs = self.cfg.block_size as u64;
        let first = dst_off / bs;
        let mut dst_map = Vec::with_capacity(nblocks);
        for i in 0..nblocks {
            match self.disks[disk].fs.bmap_alloc(ino, first + i as u64) {
                Ok(p) => dst_map.push(p),
                Err(e) => return Err(fs_errno(e)),
            }
        }
        let fs = &mut self.disks[disk].fs;
        let new_size = dst_off + total;
        if new_size > fs.size(ino) {
            fs.set_size(ino, new_size);
        }
        Ok(dst_map)
    }

    /// Issues one block read with `bread_call` (§5.2.1). Returns the CPU
    /// cost incurred in the caller's context and whether the engine
    /// should keep issuing (false = back-off retry scheduled).
    ///
    /// With `retry = true` the read re-issues a block whose previous
    /// attempt failed with a device error: the read cursor already moved
    /// past it, so only the pending-read slot is (re)claimed, and a
    /// transient buffer shortage re-arms the retry callout for this
    /// specific block instead of the general issue loop.
    pub(crate) fn file_issue_read(
        &mut self,
        id: u64,
        lblk: u64,
        pblk: u64,
        disk: usize,
        ctx: IoCtx,
        retry: bool,
    ) -> (Dur, bool) {
        let m = self.cfg.machine.clone();
        let bs = self.cfg.block_size as usize;
        let dev = self.disks[disk].dev;
        {
            let now = self.q.now();
            let d = self.splices.get_mut(&id).unwrap();
            if !retry {
                d.next_read += 1;
            }
            d.pending_reads += 1;
            d.issued_at.insert(lblk, now);
        }

        let work = KWork::SpliceReadDone {
            desc: id,
            lblk,
            buf: kbuf::BufId(u32::MAX), // patched below on miss
        };
        let sref = SpliceRef { desc: id, lblk };
        let tag = self.new_iodone(work);
        let mut fx = Vec::new();
        let out = self.cache.bread_call(dev, pblk, bs, tag, sref, &mut fx);
        // Patch the handler with the buffer identity *before* applying
        // effects: a synchronous (RAM-disk) completion dispatches the
        // handler during effect application.
        if let BreadOutcome::Miss(buf) = out {
            if let Some(KWork::SpliceReadDone { buf: b, .. }) = self.iodone_map.get_mut(&tag) {
                *b = buf;
            }
        }
        let cpu = self.apply_cache_effects(fx, ctx) + m.buf_op;
        let now = self.q.now();
        match out {
            BreadOutcome::Miss(_) => {
                self.stats.bump("splice.reads_issued");
                self.trace
                    .emit(now, || TraceEvent::SpliceReadIssue { desc: id, lblk });
                self.span_note(id, |s, now, pr, pw| s.note_read_issued(now, pr, pw));
                (cpu, true)
            }
            BreadOutcome::Hit(buf) => {
                // Already cached: the handler runs straight away.
                self.iodone_map.remove(&tag);
                self.stats.bump("splice.read_hits");
                self.trace
                    .emit(now, || TraceEvent::SpliceReadIssue { desc: id, lblk });
                self.span_note(id, |s, now, pr, pw| s.note_read_hit(now, pr, pw));
                self.enqueue_kwork(
                    WorkClass::Soft,
                    m.splice_handler,
                    KWork::SpliceReadDone {
                        desc: id,
                        lblk,
                        buf,
                    },
                );
                (cpu, true)
            }
            BreadOutcome::Busy(_) | BreadOutcome::NoBuffers => {
                // Back off a tick and retry.
                self.iodone_map.remove(&tag);
                let d = self.splices.get_mut(&id).unwrap();
                if !retry {
                    d.next_read -= 1;
                }
                d.pending_reads -= 1;
                d.issued_at.remove(&lblk);
                self.stats.bump("splice.read_backoff");
                self.trace
                    .emit(now, || TraceEvent::SpliceBackoff { desc: id, lblk });
                self.span_note(id, |s, _, _, _| s.note_backoff());
                let work = if retry {
                    KWork::SpliceRetryRead { desc: id, lblk }
                } else {
                    KWork::SpliceIssueReads { desc: id }
                };
                self.callout.schedule(self.tick, 1, work);
                (cpu, false)
            }
        }
    }

    /// §5.2.2: the block-sink write side — allocate a header sharing the
    /// read buffer's data area and start the asynchronous write.
    pub(crate) fn splice_write(&mut self, desc: u64, lblk: u64, src_buf: kbuf::BufId) {
        if self.splice_drain_write(desc, lblk, Some(crate::endpoint::Block::Buf(src_buf))) {
            return;
        }
        let Some(d) = self.splices.get(&desc) else {
            self.release_buf(src_buf);
            return;
        };
        let crate::endpoint::DstEndpoint::File { disk, .. } = d.dst else {
            panic!("splice_write with non-file sink")
        };
        let dst_pblk = d.dst_map[lblk as usize];
        let dev = self.disks[disk].dev;
        let bs = self.cfg.block_size as usize;
        let data = self.cache.data(src_buf);
        let sref = SpliceRef { desc, lblk };
        match self
            .cache
            .alloc_shared_header(dev, dst_pblk, data, bs, sref)
        {
            Some(hdr) => {
                self.stats.bump("splice.shared_writes");
                let now = self.q.now();
                self.trace
                    .emit(now, || TraceEvent::SpliceWriteIssue { desc, lblk });
                self.note_write_issue_stage(desc, lblk);
                let tag = self.new_iodone(KWork::SpliceWriteDone { desc, lblk, hdr });
                let mut fx = Vec::new();
                self.cache.bawrite_call(hdr, tag, &mut fx);
                let sync = self.apply_cache_effects(fx, IoCtx::Kernel);
                debug_assert!(sync.is_zero());
            }
            None => {
                // Destination block busy: retry next tick.
                self.stats.bump("splice.write_backoff");
                let now = self.q.now();
                self.trace
                    .emit(now, || TraceEvent::SpliceBackoff { desc, lblk });
                self.span_note(desc, |s, _, _, _| s.note_backoff());
                self.callout.schedule(
                    self.tick,
                    1,
                    KWork::SpliceWrite {
                        desc,
                        lblk,
                        src_buf,
                    },
                );
            }
        }
    }

    /// §5.2.2–§5.2.3: the block-sink write-completion handler frees both
    /// buffers and hands the block to the common flow-control tail. A
    /// write that completed with `B_ERROR` keeps the source buffer and
    /// routes into the retry/abort policy instead.
    pub(crate) fn splice_write_done(&mut self, desc: u64, lblk: u64, hdr: kbuf::BufId) {
        let failed = self.cache.flags(hdr).contains(kbuf::BufFlags::ERROR);
        self.release_buf(hdr);
        if failed {
            self.splice_write_failed(desc, lblk);
            return;
        }
        let src_buf = self
            .splices
            .get_mut(&desc)
            .and_then(|d| d.src_bufs.remove(&lblk));
        if let Some(buf) = src_buf {
            // "It retrieves a pointer to the source-side buffer … and
            // frees it by calling brelse()." The source block stays
            // cached.
            self.release_buf(buf);
        }
        let bytes = self
            .splices
            .get(&desc)
            .map(|d| d.mapped_len(lblk) as u64)
            .unwrap_or(0);
        self.splice_block_completed(desc, lblk, bytes);
    }

    /// Stream-sink write side: append one arrived chunk at its
    /// preassigned offset, in kernel context.
    pub(crate) fn splice_append(&mut self, desc: u64, lblk: u64, off: u64, data: Vec<u8>) {
        if self.splice_drain_write(desc, lblk, None) {
            return;
        }
        let Some(d) = self.splices.get(&desc) else {
            return;
        };
        let crate::endpoint::DstEndpoint::File { disk, ino } = d.dst else {
            panic!("splice_append with non-file sink")
        };
        let now = self.q.now();
        self.trace
            .emit(now, || TraceEvent::SpliceWriteIssue { desc, lblk });
        self.note_write_issue_stage(desc, lblk);
        if self.splice_append_file(disk, ino, off, &data) {
            self.splice_block_completed(desc, lblk, data.len() as u64);
        } else {
            // Transient cache shortage: the offsets are preassigned and
            // block rewrites are idempotent, so retry the same chunk at
            // the next tick.
            self.stats.bump("splice.append_backoff");
            self.trace
                .emit(now, || TraceEvent::SpliceBackoff { desc, lblk });
            self.span_note(desc, |s, _, _, _| s.note_backoff());
            self.callout.schedule(
                self.tick,
                1,
                KWork::SpliceAppend {
                    desc,
                    lblk,
                    off,
                    data,
                },
            );
        }
    }

    /// Writes `data` to a file at `off` through the buffer cache, in
    /// kernel context (no `copyin`; the data is already in the kernel).
    /// Returns `false` on a transient buffer shortage — the caller must
    /// retry with the same bytes (block rewrites are idempotent).
    fn splice_append_file(&mut self, disk: usize, ino: Ino, off: u64, data: &[u8]) -> bool {
        let bs = self.cfg.block_size as usize;
        let dev = self.disks[disk].dev;
        let mut pos = 0usize;
        while pos < data.len() {
            let abs = off + pos as u64;
            let lblk = abs / bs as u64;
            let boff = (abs % bs as u64) as usize;
            let take = (bs - boff).min(data.len() - pos);
            let existed = self.disks[disk].fs.bmap(ino, lblk).is_some();
            let Ok(pblk) = self.disks[disk].fs.bmap_alloc(ino, lblk) else {
                // Out of space: drop the rest (UDP semantics for a
                // receive-to-file splice).
                self.stats.bump("splice.append_enospc");
                return true;
            };
            let mut fx = Vec::new();
            let out = self.cache.getblk(dev, pblk, bs, &mut fx);
            let sync = self.apply_cache_effects(fx, IoCtx::Kernel);
            debug_assert!(sync.is_zero());
            match out {
                kbuf::GetblkOutcome::Held(buf) => {
                    let full = boff == 0 && take == bs;
                    if !full && !existed {
                        self.cache.data(buf).bytes_mut().fill(0);
                    }
                    {
                        let d = self.cache.data(buf);
                        let mut bytes = d.bytes_mut();
                        bytes[boff..boff + take].copy_from_slice(&data[pos..pos + take]);
                    }
                    let mut fx = Vec::new();
                    if full {
                        self.cache.bawrite(buf, &mut fx);
                    } else {
                        self.cache.bdwrite(buf, &mut fx);
                    }
                    self.apply_cache_effects(fx, IoCtx::Kernel);
                }
                kbuf::GetblkOutcome::Busy(_) | kbuf::GetblkOutcome::NoBuffers => {
                    return false;
                }
            }
            pos += take;
            let fs = &mut self.disks[disk].fs;
            let end = abs + take as u64;
            if end > fs.size(ino) {
                fs.set_size(ino, end);
            }
        }
        true
    }
}
