//! Socket endpoint backend: the `knet` glue.
//!
//! Stream **source**: one pending-read slot pulls one queued datagram
//! (truncated to the transfer's remaining bytes). The engine issues at
//! most one pull per queued datagram (`rcv_depth`), and `net_rx` re-arms
//! the read side when the next datagram arrives.
//!
//! Stream **sink**: one arrived block becomes one datagram — no user
//! copy, no socket-buffer copy.

use knet::{Datagram, SockId};
use ksim::TraceEvent;

use crate::endpoint::Block;
use crate::event::Event;
use crate::kernel::Kernel;

impl Kernel {
    /// Pulls the next queued datagram, truncated to `want` bytes.
    /// `None` if the queue drained between issue and apply.
    pub(crate) fn sock_pull(&mut self, sock: SockId, want: usize) -> Option<Vec<u8>> {
        let mut data = self.net.recv(sock).ok().flatten().map(|d| d.data)?;
        data.truncate(want);
        Some(data)
    }

    /// Sends `payload` as one datagram and schedules its delivery.
    pub(crate) fn sock_send_payload(&mut self, sock: SockId, payload: Vec<u8>) {
        let now = self.q.now();
        let len = payload.len() as u32;
        match self.net.send(now, sock, payload.len()) {
            Ok(tx) => {
                if let Some(dst) = tx.dst {
                    self.trace
                        .emit(now, || TraceEvent::NetSend { sock: sock.0, len });
                    let src_addr = self.net.source_addr(sock).expect("socket exists");
                    self.q.schedule(
                        tx.arrival.max(now),
                        Event::NetDeliver {
                            dst,
                            dgram: Datagram {
                                src: src_addr,
                                data: payload,
                            },
                        },
                    );
                } else {
                    // No peer bound: knet counted the drop.
                    self.trace
                        .emit(now, || TraceEvent::NetDrop { sock: sock.0, len });
                }
            }
            Err(_) => {
                self.stats.bump("splice.sock_send_err");
                self.trace
                    .emit(now, || TraceEvent::NetDrop { sock: sock.0, len });
            }
        }
    }

    /// Socket-sink write side: packetize one arrived block.
    pub(crate) fn splice_sock_write(&mut self, desc: u64, lblk: u64, src: Block) {
        // Abort drain: a held buffer is released via `src_bufs`; owned
        // bytes just drop.
        if self.splice_drain_write(desc, lblk, None) {
            return;
        }
        let Some(d) = self.splices.get(&desc) else {
            if let Block::Buf(buf) = src {
                self.release_buf(buf);
            }
            return;
        };
        let crate::endpoint::DstEndpoint::Sock { sock } = d.dst else {
            panic!("splice_sock_write with non-socket sink")
        };
        let (payload, buf) = match src {
            Block::Bytes(data) => (data, None),
            Block::Buf(buf) => {
                let len = d.mapped_len(lblk);
                let boff = if lblk == 0 { d.first_boff() } else { 0 };
                let data = self.cache.data(buf);
                let bytes = data.bytes();
                (bytes[boff..boff + len].to_vec(), Some(buf))
            }
        };
        let bytes = payload.len() as u64;
        let now = self.q.now();
        self.trace
            .emit(now, || TraceEvent::SpliceWriteIssue { desc, lblk });
        self.note_write_issue_stage(desc, lblk);
        self.sock_send_payload(sock, payload);
        if let Some(buf) = buf {
            let d = self.splices.get_mut(&desc).unwrap();
            d.src_bufs.remove(&lblk);
            self.release_buf(buf);
        }
        self.splice_block_completed(desc, lblk, bytes);
    }
}
