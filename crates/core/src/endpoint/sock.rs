//! Socket endpoint backend: the `knet` glue.
//!
//! Stream **source**: one pending-read slot pulls one queued datagram
//! (truncated to the transfer's remaining bytes). The engine issues at
//! most one pull per queued datagram (`rcv_depth`), and `net_rx` re-arms
//! the read side when the next datagram arrives.
//!
//! Stream **sink**: one arrived block becomes one datagram — no user
//! copy, no socket-buffer copy.

use knet::{Datagram, SockId};
use ksim::{Dur, TraceEvent};

use crate::endpoint::Block;
use crate::event::{Event, KWork};
use crate::kernel::Kernel;

impl Kernel {
    /// Pulls the next queued datagram, truncated to `want` bytes.
    /// `None` if the queue drained between issue and apply.
    pub(crate) fn sock_pull(&mut self, sock: SockId, want: usize) -> Option<Vec<u8>> {
        let mut data = self.net.recv(sock).ok().flatten().map(|d| d.data)?;
        data.truncate(want);
        Some(data)
    }

    /// Sends `payload` as one datagram and schedules its delivery.
    pub(crate) fn sock_send_payload(&mut self, sock: SockId, payload: Vec<u8>) {
        let now = self.q.now();
        let len = payload.len() as u32;
        match self.net.send(now, sock, payload.len()) {
            Ok(tx) => {
                if let Some(dst) = tx.dst {
                    self.trace
                        .emit(now, || TraceEvent::NetSend { sock: sock.0, len });
                    let src_addr = self.net.source_addr(sock).expect("socket exists");
                    self.q.schedule(
                        tx.arrival.max(now),
                        Event::NetDeliver {
                            dst,
                            dgram: Datagram {
                                src: src_addr,
                                src_sock: sock,
                                data: payload,
                            },
                        },
                    );
                } else {
                    // No peer bound: knet counted the drop.
                    self.trace
                        .emit(now, || TraceEvent::NetDrop { sock: sock.0, len });
                }
            }
            Err(_) => {
                self.stats.bump("splice.sock_send_err");
                self.trace
                    .emit(now, || TraceEvent::NetDrop { sock: sock.0, len });
            }
        }
    }

    /// Socket-sink write side: packetize one arrived block.
    pub(crate) fn splice_sock_write(&mut self, desc: u64, lblk: u64, src: Block) {
        // Abort drain: a held buffer is released via `src_bufs`; owned
        // bytes just drop.
        if self.splice_drain_write(desc, lblk, None) {
            return;
        }
        let Some(d) = self.splices.get(&desc) else {
            if let Block::Buf(buf) = src {
                self.release_buf(buf);
            }
            return;
        };
        let crate::endpoint::DstEndpoint::Sock { sock } = d.dst else {
            panic!("splice_sock_write with non-socket sink")
        };
        let (payload, buf) = match src {
            Block::Bytes(data) => (data, None),
            Block::Buf(buf) => {
                let len = d.mapped_len(lblk);
                let boff = if lblk == 0 { d.first_boff() } else { 0 };
                let data = self.cache.data(buf);
                let bytes = data.bytes();
                (bytes[boff..boff + len].to_vec(), Some(buf))
            }
        };
        let now = self.q.now();
        self.trace
            .emit(now, || TraceEvent::SpliceWriteIssue { desc, lblk });
        self.note_write_issue_stage(desc, lblk);
        // The payload is extracted, so the cache buffer can go back
        // before the wire is ready — holding it across a backpressure
        // backoff would starve the cache under high connection counts.
        if let Some(buf) = buf {
            let d = self.splices.get_mut(&desc).unwrap();
            d.src_bufs.remove(&lblk);
            self.release_buf(buf);
        }
        self.sock_send_or_backoff(desc, lblk, sock, payload);
    }

    /// Sends the packetized block, or — when the destination link's
    /// backlog exceeds the socket's send-buffer limit — parks the
    /// payload on the per-host FIFO until the link drains. The block
    /// only completes once it is on the wire, so splice flow control
    /// (§5.2.3) sees the backpressure and stops issuing reads.
    ///
    /// A non-empty parked queue also forces parking (FIFO: a fresh block
    /// must not overtake payloads already waiting for the same link).
    fn sock_send_or_backoff(&mut self, desc: u64, lblk: u64, sock: SockId, payload: Vec<u8>) {
        let now = self.q.now();
        let host = self.net.peer(sock).map(|a| a.host);
        let queued = host.is_some_and(|h| self.parked_sends.get(&h).is_some_and(|q| !q.is_empty()));
        if let Some(host) = host {
            if queued || self.net.send_would_block(now, sock, payload.len()) {
                self.stats.bump("splice.sock_snd_blocked");
                self.parked_sends
                    .entry(host)
                    .or_default()
                    .push_back(ParkedSend {
                        desc,
                        lblk,
                        sock,
                        payload,
                    });
                self.schedule_park_drain(host);
                return;
            }
        }
        let bytes = payload.len() as u64;
        self.sock_send_payload(sock, payload);
        self.splice_block_completed(desc, lblk, bytes);
    }

    /// Schedules the (single) drain callout for `host`'s parked queue at
    /// the moment the link should fit the queue head. No-op while one is
    /// already in flight.
    fn schedule_park_drain(&mut self, host: u32) {
        if self.park_drains.contains(&host) {
            return;
        }
        let Some((sock, len)) = self
            .parked_sends
            .get(&host)
            .and_then(|q| q.front())
            .map(|p| (p.sock, p.payload.len()))
        else {
            return;
        };
        let now = self.q.now();
        let ready = self.net.link_ready_at(now, sock, len);
        let wait = ready.saturating_since(now).max(Dur::from_us(1));
        let ticks = self.dur_to_ticks(wait).max(1);
        self.park_drains.insert(host);
        self.callout
            .schedule(self.tick, ticks, KWork::SpliceSockDrain { host });
    }

    /// Drains `host`'s parked-send queue: sends every payload that now
    /// fits, skips entries whose splice was torn down or aborted while
    /// parked, and re-arms one callout for the first payload that still
    /// does not fit.
    pub(crate) fn splice_sock_drain(&mut self, host: u32) {
        self.park_drains.remove(&host);
        loop {
            let Some((desc, lblk, sock, len)) = self
                .parked_sends
                .get(&host)
                .and_then(|q| q.front())
                .map(|p| (p.desc, p.lblk, p.sock, p.payload.len()))
            else {
                return;
            };
            // The splice may have died while the payload waited.
            let dead =
                self.splice_drain_write(desc, lblk, None) || !self.splices.contains_key(&desc);
            if dead {
                self.parked_sends.get_mut(&host).unwrap().pop_front();
                continue;
            }
            let now = self.q.now();
            if self.net.send_would_block(now, sock, len) {
                self.schedule_park_drain(host);
                return;
            }
            let p = self
                .parked_sends
                .get_mut(&host)
                .unwrap()
                .pop_front()
                .unwrap();
            let bytes = p.payload.len() as u64;
            self.sock_send_payload(p.sock, p.payload);
            self.splice_block_completed(p.desc, p.lblk, bytes);
        }
    }
}

/// One splice payload parked behind a full link send buffer (its cache
/// buffer was released when the block was packetized).
pub(crate) struct ParkedSend {
    /// Splice descriptor id.
    pub(crate) desc: u64,
    /// Logical block within the transfer.
    pub(crate) lblk: u64,
    /// Sending socket.
    pub(crate) sock: SockId,
    /// The packetized bytes.
    pub(crate) payload: Vec<u8>,
}
