//! Character-device endpoint backend: the `kdev` glue.
//!
//! Stream **source** (framebuffer): each pull reads a deterministic
//! frame-data chunk at the current simulated time.
//!
//! Stream **sink** (audio/video DAC): deliver as much of an arrived
//! block as the device accepts, honouring its pacing back-pressure; the
//! remainder retries via the callout when space drains. The audio DAC's
//! back-pressure is what rate-limits a whole-file audio splice.

use ksim::TraceEvent;

use crate::endpoint::Block;
use crate::event::KWork;
use crate::kernel::Kernel;
use crate::objects::CharDev;

impl Kernel {
    /// Reads `want` bytes of frame data from the framebuffer.
    pub(crate) fn fb_pull(&mut self, cdev: usize, now: ksim::SimTime, want: usize) -> Vec<u8> {
        let CharDev::Fb(fb) = &mut self.cdevs[cdev].dev else {
            panic!("fb_pull on a non-framebuffer device")
        };
        fb.read(now, want)
    }

    /// Device-sink write side: paced delivery of one arrived block. An
    /// armed write-failure countdown on the device (injected fault)
    /// errors the delivery and aborts the splice with `EIO`.
    pub(crate) fn splice_dev_write(&mut self, desc: u64, lblk: u64, src: Block, off: usize) {
        // Abort drain: a held buffer is released via `src_bufs`; owned
        // bytes just drop.
        if self.splice_drain_write(desc, lblk, None) {
            return;
        }
        let now = self.q.now();
        let Some(d) = self.splices.get(&desc) else {
            if let Block::Buf(buf) = src {
                self.release_buf(buf);
            }
            return;
        };
        let crate::endpoint::DstEndpoint::Dev { cdev } = d.dst else {
            panic!("splice_dev_write with non-device sink")
        };
        let len = match &src {
            Block::Bytes(data) => data.len(),
            Block::Buf(_) => d.mapped_len(lblk),
        };
        if off == 0 {
            self.trace
                .emit(now, || TraceEvent::SpliceWriteIssue { desc, lblk });
            self.note_write_issue_stage(desc, lblk);
            // Injected device write failure: the countdown is charged
            // once per block; a block that would overrun it fails.
            if let Some(limit) = self.cdevs[cdev].write_fail_after {
                if (len as u64) > limit {
                    let d = self.splices.get_mut(&desc).unwrap();
                    d.pending_writes -= 1;
                    d.issued_at.remove(&lblk);
                    d.src_bufs.remove(&lblk);
                    if let Block::Buf(buf) = src {
                        self.release_buf(buf);
                    }
                    self.stats.bump("io.errors");
                    self.splice_abort(desc, kproc::Errno::Eio);
                    return;
                }
                self.cdevs[cdev].write_fail_after = Some(limit - len as u64);
            }
        }
        let want = len - off;
        let (accepted, retry_at) = match &mut self.cdevs[cdev].dev {
            CharDev::Audio(a) => {
                let took = a.write_some(now, want);
                let retry = if took < want {
                    Some(a.time_for_space(now, want - took))
                } else {
                    None
                };
                (took, retry)
            }
            CharDev::Video(v) => {
                v.write(now, want);
                (want, None)
            }
            CharDev::Fb(_) => unreachable!("fb is not a sink"),
        };
        if accepted > 0 {
            self.stats.add("copy.driver_bytes", accepted as u64);
        }
        match retry_at {
            None => {
                if let Block::Buf(buf) = src {
                    let d = self.splices.get_mut(&desc).unwrap();
                    d.src_bufs.remove(&lblk);
                    self.release_buf(buf);
                }
                self.splice_block_completed(desc, lblk, len as u64);
            }
            Some(at) => {
                let delay = at.saturating_since(now);
                let ticks = self.dur_to_ticks(delay);
                self.stats.bump("splice.dev_backpressure");
                self.trace
                    .emit(now, || TraceEvent::SpliceBackoff { desc, lblk });
                self.span_note(desc, |s, _, _, _| s.note_backoff());
                self.callout.schedule(
                    self.tick,
                    ticks,
                    KWork::SpliceDevWrite {
                        desc,
                        lblk,
                        src,
                        off: off + accepted,
                    },
                );
            }
        }
    }
}
