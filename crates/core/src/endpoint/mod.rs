//! The capability-based endpoint layer.
//!
//! `splice(2)` moves data between *arbitrary pairs of I/O objects* (§5.1
//! of the paper lists files, sockets, and framebuffer/device endpoints).
//! Rather than hard-coding one engine per pair, the kernel resolves each
//! file descriptor **once**, at `sys_splice` time, into an endpoint
//! descriptor ([`SrcEndpoint`] / [`DstEndpoint`]) whose
//! [capabilities](EndpointCaps) say how it can participate:
//!
//! | object       | block src | stream src | block sink | stream sink | EOF |
//! |--------------|-----------|------------|------------|-------------|-----|
//! | regular file | yes       | —          | yes¹       | yes (append)| yes |
//! | UDP socket   | —         | yes        | —          | yes         | —   |
//! | framebuffer  | —         | yes        | —          | —           | —   |
//! | audio/video  | —         | —          | —          | yes         | —   |
//!
//! ¹ block-sink sharing needs block-aligned offsets on both sides;
//!   unaligned file sinks fall back on rejection (`EINVAL`), matching the
//!   paper's whole-block sharing constraint.
//!
//! A **block source** yields a physical block table up front
//! ([`ReadPlan::Mapped`], the §5.2 `bmap` walk) and is read with
//! `bread_call`; a **stream source** is pulled chunk-by-chunk
//! ([`ReadPlan::Stream`]). Either way every arriving [`Block`] flows
//! through the same engine loop in [`crate::splice_engine`]: the same
//! pending-read/pending-write gauges, the same §5.2.3 watermark flow
//! control, the same `SpliceSpan` lifecycle instrumentation.
//!
//! The per-backend glue lives in the submodules: [`file`] (kfs block
//! tables, shared-header writes, the append path), [`sock`] (knet
//! datagram pulls and sends), and [`dev`] (kdev framebuffer pulls and
//! paced DAC delivery).

use kbuf::BufId;
use kfs::Ino;
use knet::SockId;
use kproc::Errno;

use crate::kernel::Kernel;
use crate::objects::{CharDev, FileObj};

pub(crate) mod dev;
pub(crate) mod file;
pub(crate) mod sock;

pub(crate) use sock::ParkedSend;

/// What a spliceable object can do, decided purely by its class.
///
/// The table is total: every `FileObj` maps to one row, and `sys_splice`
/// derives accept/reject decisions from it (plus per-call state such as
/// socket connectedness and offset alignment).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct EndpointCaps {
    /// Can head a splice as a block-table source (`bmap` + `bread_call`).
    pub block_source: bool,
    /// Can head a splice as a pulled byte/datagram stream.
    pub stream_source: bool,
    /// Can terminate a splice with whole-block shared-header writes.
    pub block_sink: bool,
    /// Can terminate a splice by accepting byte chunks (append, paced
    /// device delivery, datagram sends).
    pub stream_sink: bool,
    /// Has a resolvable end-of-file, so `SpliceLen::Eof` is meaningful.
    pub has_eof: bool,
}

impl EndpointCaps {
    /// True if the object can be the source of any splice.
    pub fn source(&self) -> bool {
        self.block_source || self.stream_source
    }

    /// True if the object can be the sink of any splice.
    pub fn sink(&self) -> bool {
        self.block_sink || self.stream_sink
    }
}

/// Object classes distinguishable at `sys_splice` time.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ObjClass {
    /// A regular file on a block device.
    File,
    /// A UDP socket.
    Sock,
    /// The framebuffer character device.
    Fb,
    /// The audio DAC character device.
    Audio,
    /// The video DAC character device.
    Video,
}

/// The capability table (see the module docs for the rendered form).
pub fn caps(class: ObjClass) -> EndpointCaps {
    match class {
        ObjClass::File => EndpointCaps {
            block_source: true,
            stream_source: false,
            block_sink: true,
            stream_sink: true,
            has_eof: true,
        },
        ObjClass::Sock => EndpointCaps {
            block_source: false,
            stream_source: true,
            block_sink: false,
            stream_sink: true,
            has_eof: false,
        },
        ObjClass::Fb => EndpointCaps {
            block_source: false,
            stream_source: true,
            block_sink: false,
            stream_sink: false,
            has_eof: false,
        },
        ObjClass::Audio | ObjClass::Video => EndpointCaps {
            block_source: false,
            stream_source: false,
            block_sink: false,
            stream_sink: true,
            has_eof: false,
        },
    }
}

/// A resolved splice source.
#[derive(Clone, Copy, Debug)]
pub(crate) enum SrcEndpoint {
    /// A regular file: block-table-driven reads.
    File { disk: usize, ino: Ino },
    /// The framebuffer: pulled frame-data chunks.
    Fb { cdev: usize },
    /// A UDP socket: pulled datagrams.
    Sock { sock: SockId },
}

/// A resolved splice sink.
#[derive(Clone, Copy, Debug)]
pub(crate) enum DstEndpoint {
    /// A regular file: shared-header block writes or byte appends.
    File { disk: usize, ino: Ino },
    /// A character device (audio/video DAC): paced delivery.
    Dev { cdev: usize },
    /// A UDP socket: datagram sends.
    Sock { sock: SockId },
}

/// How the source side of a splice is driven.
#[derive(Clone, Debug)]
pub(crate) enum ReadPlan {
    /// Block-table source (§5.2): the full physical block list, obtained
    /// by successive `bmap` calls at descriptor-build time.
    Mapped {
        /// Physical source block per logical splice block.
        src_map: Vec<u64>,
        /// Bytes of each splice block that belong to the transfer.
        src_lens: Vec<usize>,
        /// Offset of the transfer within the first block.
        first_boff: usize,
    },
    /// Stream source: pulled in chunks of at most `chunk` bytes, one
    /// in-kernel pull per pending-read slot.
    Stream {
        /// Pull granularity (a datagram never splits; a framebuffer read
        /// yields exactly this many bytes).
        chunk: usize,
    },
}

/// One unit of spliced data travelling from a source to a sink.
///
/// Block sources deliver held cache buffers (whose data area the file
/// sink's shared-header write aliases — the §5.2.2 no-copy path); stream
/// sources deliver owned byte chunks. Every sink accepts both.
#[derive(Debug)]
pub enum Block {
    /// A held buffer-cache block (block sources).
    Buf(BufId),
    /// An owned byte chunk (stream sources).
    Bytes(Vec<u8>),
}

impl Kernel {
    /// Classifies an open object for the capability table.
    pub(crate) fn obj_class(&self, obj: FileObj) -> ObjClass {
        match obj {
            FileObj::File { .. } => ObjClass::File,
            FileObj::Sock { .. } => ObjClass::Sock,
            FileObj::Chr { cdev } => match self.cdevs[cdev].dev {
                CharDev::Fb(_) => ObjClass::Fb,
                CharDev::Audio(_) => ObjClass::Audio,
                CharDev::Video(_) => ObjClass::Video,
            },
        }
    }

    /// Resolves a source endpoint, or the documented rejection:
    /// `ENOTSUP` for objects without source capability.
    pub(crate) fn resolve_src(&self, obj: FileObj) -> Result<SrcEndpoint, Errno> {
        if !caps(self.obj_class(obj)).source() {
            return Err(Errno::Enotsup);
        }
        Ok(match obj {
            FileObj::File { disk, ino } => SrcEndpoint::File { disk, ino },
            FileObj::Chr { cdev } => SrcEndpoint::Fb { cdev },
            FileObj::Sock { sock } => SrcEndpoint::Sock { sock },
        })
    }

    /// Resolves a sink endpoint, or the documented rejection: `ENOTSUP`
    /// for objects without sink capability, `ENOTCONN` for an
    /// unconnected socket.
    pub(crate) fn resolve_dst(&self, obj: FileObj) -> Result<DstEndpoint, Errno> {
        if !caps(self.obj_class(obj)).sink() {
            return Err(Errno::Enotsup);
        }
        Ok(match obj {
            FileObj::File { disk, ino } => DstEndpoint::File { disk, ino },
            FileObj::Chr { cdev } => DstEndpoint::Dev { cdev },
            FileObj::Sock { sock } => {
                if self.net.peer(sock).is_none() {
                    return Err(Errno::Enotconn);
                }
                DstEndpoint::Sock { sock }
            }
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn capability_table_shape() {
        assert!(caps(ObjClass::File).block_source);
        assert!(caps(ObjClass::File).has_eof);
        assert!(caps(ObjClass::Sock).stream_source && caps(ObjClass::Sock).stream_sink);
        assert!(!caps(ObjClass::Sock).has_eof);
        assert!(caps(ObjClass::Fb).stream_source && !caps(ObjClass::Fb).sink());
        assert!(!caps(ObjClass::Audio).source() && caps(ObjClass::Audio).stream_sink);
        assert!(!caps(ObjClass::Video).source() && caps(ObjClass::Video).stream_sink);
    }
}
