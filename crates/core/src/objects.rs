//! Kernel object tables: mounted disks, character devices, the system
//! open-file table and per-process descriptor tables.

use std::collections::BTreeMap;

use kbuf::DevId;
use kdev::{AudioDac, Framebuffer, VideoDac};
use kfs::{Fs, Ino};
use khw::{Disk, RamDisk, SparseStore};
use knet::SockId;
use kproc::{Fd, Pid};
use ksim::{Dur, Hist};

/// Index into the system open-file table.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct FileId(pub u32);

/// The medium behind a mounted filesystem.
pub enum DiskUnitKind {
    /// A mechanical SCSI disk with full timing.
    Scsi(Disk),
    /// The kernel-memory RAM disk.
    Ram(RamDisk),
}

impl DiskUnitKind {
    /// The raw medium (setup/verification access).
    pub fn store(&self) -> &SparseStore {
        match self {
            DiskUnitKind::Scsi(d) => d.store(),
            DiskUnitKind::Ram(d) => d.store(),
        }
    }

    /// Mutable raw medium access.
    pub fn store_mut(&mut self) -> &mut SparseStore {
        match self {
            DiskUnitKind::Scsi(d) => d.store_mut(),
            DiskUnitKind::Ram(d) => d.store_mut(),
        }
    }

    /// True for the RAM disk (synchronous, CPU-copied transfers).
    pub fn is_ram(&self) -> bool {
        matches!(self, DiskUnitKind::Ram(_))
    }

    /// Total time this device spent servicing requests. This is the
    /// **one** busy-time accounting source: the profiler snapshot, the
    /// sampler gauges, and every bench/analysis export must read it
    /// through here so the utilization auditor compares one number
    /// against the service digest, never two divergent recomputations.
    pub fn busy_time(&self) -> Dur {
        match self {
            DiskUnitKind::Scsi(d) => d.busy_time(),
            DiskUnitKind::Ram(d) => d.busy_time(),
        }
    }

    /// Requests completed by this device.
    pub fn requests(&self) -> u64 {
        match self {
            DiskUnitKind::Scsi(d) => d.stats().requests,
            DiskUnitKind::Ram(d) => d.stats().requests,
        }
    }

    /// Requests currently queued or in flight. The RAM disk transfers
    /// synchronously in the caller's context, so its queue is always
    /// empty by construction.
    pub fn queue_depth(&self) -> u64 {
        match self {
            DiskUnitKind::Scsi(d) => d.queue_depth() as u64,
            DiskUnitKind::Ram(_) => 0,
        }
    }

    /// Per-request service-time histogram (nanoseconds).
    pub fn service_hist(&self) -> &Hist {
        match self {
            DiskUnitKind::Scsi(d) => d.service_hist(),
            DiskUnitKind::Ram(d) => d.service_hist(),
        }
    }
}

/// A mounted disk: the device model, its filesystem, and I/O bookkeeping.
pub struct DiskUnit {
    /// Mount name: files live under `/<name>/...`.
    pub name: String,
    /// The device model.
    pub kind: DiskUnitKind,
    /// The mounted filesystem.
    pub fs: Fs,
    /// Identity used in the buffer cache.
    pub dev: DevId,
    /// Asynchronous writes in flight to this device (fsync waits on 0).
    pub write_inflight: u32,
}

/// A character device instance.
pub enum CharDev {
    /// `/dev/speaker`-style self-pacing audio output.
    Audio(AudioDac),
    /// `/dev/video_dac` frame output.
    Video(VideoDac),
    /// Framebuffer frame source.
    Fb(Framebuffer),
}

/// A named character device.
pub struct CharDevUnit {
    /// Device path, e.g. `/dev/speaker`.
    pub path: String,
    /// The device.
    pub dev: CharDev,
    /// Injected fault: after this many more accepted bytes, the next
    /// splice delivery to this device fails with `EIO`. `None` = never.
    pub write_fail_after: Option<u64>,
}

/// What an open file descriptor refers to.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum FileObj {
    /// A regular file on a mounted disk.
    File {
        /// Index into the kernel's disk table.
        disk: usize,
        /// The file's inode.
        ino: Ino,
    },
    /// A character device.
    Chr {
        /// Index into the kernel's character-device table.
        cdev: usize,
    },
    /// A UDP socket.
    Sock {
        /// The socket.
        sock: SockId,
    },
}

/// A system open-file table entry (shared offset semantics like UNIX).
pub struct OpenFile {
    /// What it refers to.
    pub obj: FileObj,
    /// Byte offset for files.
    pub offset: u64,
    /// `FASYNC` set via `fcntl`.
    pub fasync: bool,
    /// Readable.
    pub readable: bool,
    /// Writable.
    pub writable: bool,
    /// Descriptor references (close drops; entry dies at zero).
    pub refs: u32,
    /// Last logical block read (sequential-access detection for
    /// read-ahead).
    pub last_lblk: Option<u64>,
}

/// The open-file table plus per-process descriptor tables.
#[derive(Default)]
pub struct FileTable {
    files: Vec<Option<OpenFile>>,
    fds: BTreeMap<Pid, BTreeMap<Fd, FileId>>,
}

impl FileTable {
    /// Empty tables.
    pub fn new() -> FileTable {
        FileTable::default()
    }

    /// Installs an open file and assigns the lowest free descriptor ≥ 3
    /// for `pid` (0-2 are reserved as in UNIX).
    pub fn open(&mut self, pid: Pid, file: OpenFile) -> (Fd, FileId) {
        let fid = if let Some(i) = self.files.iter().position(Option::is_none) {
            self.files[i] = Some(file);
            FileId(i as u32)
        } else {
            self.files.push(Some(file));
            FileId((self.files.len() - 1) as u32)
        };
        let table = self.fds.entry(pid).or_default();
        let mut fd = 3;
        while table.contains_key(&Fd(fd)) {
            fd += 1;
        }
        table.insert(Fd(fd), fid);
        (Fd(fd), fid)
    }

    /// Resolves a descriptor for `pid`.
    pub fn resolve(&self, pid: Pid, fd: Fd) -> Option<FileId> {
        self.fds.get(&pid)?.get(&fd).copied()
    }

    /// The open file behind `fid`.
    pub fn get(&self, fid: FileId) -> Option<&OpenFile> {
        self.files.get(fid.0 as usize)?.as_ref()
    }

    /// Mutable open file access.
    pub fn get_mut(&mut self, fid: FileId) -> Option<&mut OpenFile> {
        self.files.get_mut(fid.0 as usize)?.as_mut()
    }

    /// Closes `fd` for `pid`; returns the open file if this was the last
    /// reference (so the kernel can release the underlying object).
    pub fn close(&mut self, pid: Pid, fd: Fd) -> Option<Option<OpenFile>> {
        let fid = self.fds.get_mut(&pid)?.remove(&fd)?;
        let slot = self.files.get_mut(fid.0 as usize)?;
        let f = slot.as_mut()?;
        f.refs -= 1;
        if f.refs == 0 {
            Some(slot.take())
        } else {
            Some(None)
        }
    }

    /// Every descriptor of `pid` (for exit cleanup), in order.
    pub fn fds_of(&self, pid: Pid) -> Vec<Fd> {
        self.fds
            .get(&pid)
            .map(|t| t.keys().copied().collect())
            .unwrap_or_default()
    }

    /// Number of live open-file entries.
    pub fn live(&self) -> usize {
        self.files.iter().filter(|f| f.is_some()).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn file() -> OpenFile {
        OpenFile {
            obj: FileObj::File {
                disk: 0,
                ino: Ino(2),
            },
            offset: 0,
            fasync: false,
            readable: true,
            writable: false,
            refs: 1,
            last_lblk: None,
        }
    }

    #[test]
    fn fds_start_at_three_and_fill_gaps() {
        let mut t = FileTable::new();
        let (fd1, _) = t.open(Pid(1), file());
        let (fd2, _) = t.open(Pid(1), file());
        assert_eq!(fd1, Fd(3));
        assert_eq!(fd2, Fd(4));
        t.close(Pid(1), fd1).unwrap();
        let (fd3, _) = t.open(Pid(1), file());
        assert_eq!(fd3, Fd(3), "lowest free descriptor is reused");
    }

    #[test]
    fn per_process_namespaces() {
        let mut t = FileTable::new();
        let (fd_a, fid_a) = t.open(Pid(1), file());
        let (fd_b, fid_b) = t.open(Pid(2), file());
        assert_eq!(fd_a, fd_b, "descriptor numbers are per-process");
        assert_ne!(fid_a, fid_b);
        assert_eq!(t.resolve(Pid(1), fd_a), Some(fid_a));
        assert_eq!(t.resolve(Pid(2), fd_a), Some(fid_b));
        assert_eq!(t.resolve(Pid(3), fd_a), None);
    }

    #[test]
    fn close_releases_entry_at_zero_refs() {
        let mut t = FileTable::new();
        let (fd, fid) = t.open(Pid(1), file());
        assert_eq!(t.live(), 1);
        let released = t.close(Pid(1), fd).unwrap();
        assert!(released.is_some(), "last close yields the object");
        assert_eq!(t.live(), 0);
        assert!(t.get(fid).is_none());
        assert!(t.close(Pid(1), fd).is_none(), "double close fails");
    }

    #[test]
    fn exit_cleanup_list() {
        let mut t = FileTable::new();
        t.open(Pid(1), file());
        t.open(Pid(1), file());
        assert_eq!(t.fds_of(Pid(1)), vec![Fd(3), Fd(4)]);
        assert!(t.fds_of(Pid(9)).is_empty());
    }
}
