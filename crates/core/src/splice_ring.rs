//! Splice rings: batched submission and completion of splice requests.
//!
//! The paper removes the *per-byte* cost of a copy by keeping data in the
//! kernel; once thousands of descriptors are in flight the *per-call*
//! crossing cost (~40µs on the calibrated DECstation) becomes the next
//! tax. A splice ring amortizes it, io_uring style: a process creates a
//! ring with a bounded depth, posts many typed [`SpliceSqe`] submissions
//! in **one** `sys_ring_submit` crossing, and reaps typed [`SpliceCqe`]
//! completions in **one** `sys_ring_reap` crossing — optionally with a
//! `SIGIO` nudge when the completion queue goes non-empty.
//!
//! The ring is also the **unified request path**: every splice entry
//! point routes through it. A synchronous `splice(2)` is a depth-1
//! submit-and-wait on the process's implicit *legacy ring*; the
//! `FASYNC`/`SIGIO` descriptor path is a legacy-ring entry that posts
//! `SIGIO` instead of queueing a CQE; and the socket→descriptor index
//! that used to live in an ad-hoc `sock_splices` map on the kernel is
//! part of the ring table's in-flight bookkeeping. There is exactly one
//! code path from a [`kproc::SpliceReq`] to a
//! [`SpliceOutcome`](crate::SpliceOutcome) —
//! [`splice_begin`](crate::splice_engine), reached from here.
//!
//! Rejections use the same funnel as `splice(2)` itself
//! ([`Kernel::splice_reject`](crate::splice_engine)): `EINVAL` for a bad
//! ring depth, `EAGAIN` for a full submission queue, `EBADF` for a ring
//! the caller does not own. Per-entry endpoint failures do not fail the
//! batch: they are counted through the funnel and surfaced as error CQEs
//! carrying the typed errno.

use std::collections::{HashMap, VecDeque};

use knet::SockId;
use kproc::{Chan, ChanSpace, Errno, Pid, SpliceCqe, SpliceSqe, SyscallRet};
use ksim::{Dur, TraceEvent};

use crate::kernel::Kernel;
use crate::splice_engine::SpliceBegin;
use crate::splice_engine::SpliceOutcome;
use crate::syscalls::{Cont, SyscallOutcome};

/// Hard cap on the depth of a created ring: big enough for the paper's
/// million-connection extrapolation to batch usefully, small enough that
/// a bogus depth cannot make the kernel pin unbounded completion state.
pub const RING_MAX_DEPTH: u32 = 1024;

/// Completion routing for one in-flight splice descriptor: which ring it
/// belongs to, the tag its CQE echoes, and how the owner is notified.
#[derive(Clone, Copy, Debug)]
pub(crate) struct RingRoute {
    /// Owning ring id.
    pub ring: u64,
    /// CQE tag; `None` means "use the splice descriptor id" (legacy
    /// synchronous entries, whose id is not known until admission).
    pub user_data: Option<u64>,
    /// Queue a CQE at completion (every path except legacy `FASYNC`,
    /// which latches the outcome but announces by signal only).
    pub queue_cqe: bool,
    /// Post `SIGIO` to the owner at completion (legacy `FASYNC`).
    pub sigio: bool,
}

/// One splice ring: bounded in-flight + completion state for a process.
pub(crate) struct SpliceRing {
    pub owner: Pid,
    /// Bound on in-flight entries plus unreaped CQEs. Zero means
    /// unbounded — only the implicit legacy ring uses that.
    pub depth: u32,
    /// Ring-level `SIGIO` when the CQ goes non-empty.
    pub sigio: bool,
    /// The process's implicit ring backing plain `splice(2)` calls; not
    /// addressable by ring syscalls.
    pub legacy: bool,
    /// Owner exited: completions drain without queueing, and the ring is
    /// reclaimed once the last in-flight entry lands.
    pub dead: bool,
    /// In-flight splice descriptors charged to this ring.
    pub inflight: u32,
    /// Completions awaiting a reaper, in completion order.
    pub cq: VecDeque<SpliceCqe>,
}

impl SpliceRing {
    /// Submission room left: how many more entries may be admitted
    /// before in-flight + unreaped completions reach the depth bound.
    fn room(&self) -> usize {
        if self.depth == 0 {
            return usize::MAX;
        }
        (self.depth as usize).saturating_sub(self.inflight as usize + self.cq.len())
    }
}

/// The kernel's ring table: every ring, the in-flight routing table for
/// all splice descriptors (whatever their entry path), and the
/// socket→descriptor index for stream sources.
pub(crate) struct RingTable {
    rings: HashMap<u64, SpliceRing>,
    next_ring: u64,
    /// Implicit per-process rings backing the legacy entry points.
    legacy: HashMap<Pid, u64>,
    /// Splice descriptor id → completion routing.
    inflight: HashMap<u64, RingRoute>,
    /// Socket-sourced splices: src socket → descriptor (formerly the
    /// kernel's ad-hoc `sock_splices` map).
    socks: HashMap<SockId, u64>,
}

impl RingTable {
    pub fn new() -> RingTable {
        RingTable {
            rings: HashMap::new(),
            next_ring: 1,
            legacy: HashMap::new(),
            inflight: HashMap::new(),
            socks: HashMap::new(),
        }
    }

    pub fn create(&mut self, owner: Pid, depth: u32, sigio: bool, legacy: bool) -> u64 {
        let id = self.next_ring;
        self.next_ring += 1;
        self.rings.insert(
            id,
            SpliceRing {
                owner,
                depth,
                sigio,
                legacy,
                dead: false,
                inflight: 0,
                cq: VecDeque::new(),
            },
        );
        id
    }

    pub fn get(&self, ring: u64) -> Option<&SpliceRing> {
        self.rings.get(&ring)
    }

    pub fn get_mut(&mut self, ring: u64) -> Option<&mut SpliceRing> {
        self.rings.get_mut(&ring)
    }

    /// The process's implicit legacy ring, created on first use.
    pub fn legacy_ring_for(&mut self, pid: Pid) -> u64 {
        if let Some(&id) = self.legacy.get(&pid) {
            return id;
        }
        let id = self.create(pid, 0, false, true);
        self.legacy.insert(pid, id);
        id
    }

    /// Registers routing for an admitted splice descriptor.
    pub fn register(&mut self, desc: u64, route: RingRoute) {
        if let Some(r) = self.rings.get_mut(&route.ring) {
            r.inflight += 1;
        }
        self.inflight.insert(desc, route);
    }

    /// Removes and returns the routing of a completing descriptor,
    /// surrendering its in-flight slot.
    pub fn complete(&mut self, desc: u64) -> Option<RingRoute> {
        let route = self.inflight.remove(&desc)?;
        if let Some(r) = self.rings.get_mut(&route.ring) {
            r.inflight = r.inflight.saturating_sub(1);
        }
        Some(route)
    }

    /// Indexes a socket-sourced splice by its source socket.
    pub fn bind_sock(&mut self, sock: SockId, desc: u64) {
        self.socks.insert(sock, desc);
    }

    /// Drops the socket index entry (splice completion).
    pub fn unbind_sock(&mut self, sock: SockId) {
        self.socks.remove(&sock);
    }

    /// The splice draining `sock`, if one is active.
    pub fn sock_desc(&self, sock: SockId) -> Option<u64> {
        self.socks.get(&sock).copied()
    }

    /// Removes and returns the splice draining `sock` (source close).
    pub fn take_sock(&mut self, sock: SockId) -> Option<u64> {
        self.socks.remove(&sock)
    }

    /// Removes the CQE tagged `user_data` from `ring`, if queued (legacy
    /// synchronous reap of exactly one entry).
    pub fn remove_cqe(&mut self, ring: u64, user_data: u64) {
        if let Some(r) = self.rings.get_mut(&ring) {
            if let Some(pos) = r.cq.iter().position(|c| c.user_data == user_data) {
                r.cq.remove(pos);
            }
        }
    }

    /// Owner exit: rings die, queued completions are dropped, and each
    /// ring is reclaimed once its in-flight entries drain.
    pub fn owner_exit(&mut self, pid: Pid) {
        self.legacy.remove(&pid);
        let ids: Vec<u64> = self
            .rings
            .iter()
            .filter(|(_, r)| r.owner == pid)
            .map(|(id, _)| *id)
            .collect();
        for id in ids {
            let r = self.rings.get_mut(&id).unwrap();
            r.dead = true;
            r.cq.clear();
            if r.inflight == 0 {
                self.rings.remove(&id);
            }
        }
    }
}

impl Kernel {
    // ----- ring syscalls ----------------------------------------------------

    /// `sys_ring_create(depth, sigio)`: allocate a bounded ring. Depth 0
    /// (or past [`RING_MAX_DEPTH`]) is `EINVAL` through the splice
    /// rejection funnel.
    pub(crate) fn sys_ring_create(&mut self, pid: Pid, depth: u32, sigio: bool) -> SyscallOutcome {
        let m = self.cfg.machine.clone();
        if depth == 0 || depth > RING_MAX_DEPTH {
            return self.splice_reject(Errno::Einval);
        }
        let id = self.rings.create(pid, depth, sigio, false);
        self.stats.bump("ring.created");
        SyscallOutcome::Done {
            cpu: m.syscall + m.buf_op,
            ret: SyscallRet::Val(id as i64),
        }
    }

    /// `sys_ring_submit(ring, sqes)`: admit as many submissions as the
    /// ring has room for, all under **one** syscall crossing. Returns
    /// `Val(accepted)`; `EAGAIN` when the ring is completely full,
    /// `EBADF` for a ring the caller does not own. Per-entry endpoint
    /// failures become error CQEs, not batch failures.
    pub(crate) fn sys_ring_submit(
        &mut self,
        pid: Pid,
        ring: u64,
        sqes: Vec<SpliceSqe>,
    ) -> SyscallOutcome {
        let m = self.cfg.machine.clone();
        let room = match self.rings.get(ring) {
            Some(r) if r.owner == pid && !r.dead && !r.legacy => r.room(),
            _ => return self.splice_reject(Errno::Ebadf),
        };
        if sqes.is_empty() {
            return SyscallOutcome::Done {
                cpu: m.syscall,
                ret: SyscallRet::Val(0),
            };
        }
        if room == 0 {
            // Full submission queue: the documented backpressure signal.
            return self.splice_reject(Errno::Eagain);
        }
        let accepted = sqes.len().min(room);
        let mut cpu = m.syscall;
        let now = self.q.now();
        for sqe in sqes.into_iter().take(accepted) {
            cpu += m.ring_submit_entry;
            // SQE admission wait: the simulated clock does not advance
            // inside one crossing, so the admission→dispatch gap is the
            // *virtual* CPU offset accumulated so far — entry 0 waits
            // only the syscall + its own admission charge, later entries
            // additionally wait behind every earlier entry's admission
            // and launch work.
            let wait_ns = cpu.as_ns();
            self.kstat.stages.sqe_wait.record(wait_ns);
            self.trace
                .emit(now, || TraceEvent::RingSqeWait { ring, wait_ns });
            let route = RingRoute {
                ring,
                user_data: Some(sqe.user_data),
                queue_cqe: true,
                sigio: false,
            };
            let fids = (
                self.files.resolve(pid, sqe.req.src),
                self.files.resolve(pid, sqe.req.dst),
            );
            let ((sfid, dfid), user_data) = match fids {
                (Some(s), Some(d)) => ((s, d), sqe.user_data),
                _ => {
                    let e = self.splice_reject_note(Errno::Ebadf);
                    self.ring_push_cqe(
                        ring,
                        SpliceCqe {
                            user_data: sqe.user_data,
                            outcome: SpliceOutcome {
                                bytes_moved: 0,
                                error: Some(e),
                            },
                        },
                    );
                    continue;
                }
            };
            match self.splice_begin(sfid, dfid, sqe.req.len, sqe.req.retry_limit, route) {
                SpliceBegin::Started { cpu: c, .. } => cpu += c,
                SpliceBegin::Empty { cpu: c } => {
                    cpu += c;
                    self.ring_push_cqe(
                        ring,
                        SpliceCqe {
                            user_data,
                            outcome: SpliceOutcome {
                                bytes_moved: 0,
                                error: None,
                            },
                        },
                    );
                }
                SpliceBegin::Rejected(e) => {
                    self.ring_push_cqe(
                        ring,
                        SpliceCqe {
                            user_data,
                            outcome: SpliceOutcome {
                                bytes_moved: 0,
                                error: Some(e),
                            },
                        },
                    );
                }
            }
        }
        self.trace.emit(now, || TraceEvent::RingSubmit {
            ring,
            entries: accepted as u32,
        });
        self.stats.add("ring.submitted", accepted as u64);
        SyscallOutcome::Done {
            cpu,
            ret: SyscallRet::Val(accepted as i64),
        }
    }

    /// `sys_ring_reap(ring, min)`: drain queued completions in **one**
    /// crossing. Blocks until at least `min` CQEs are available, clamped
    /// to what can still arrive (so a reap can never deadlock waiting
    /// for completions that were never submitted); `min = 0` polls.
    pub(crate) fn sys_ring_reap(&mut self, pid: Pid, ring: u64, min: u32) -> SyscallOutcome {
        match self.rings.get(ring) {
            Some(r) if r.owner == pid && !r.dead && !r.legacy => {}
            _ => return self.splice_reject(Errno::Ebadf),
        }
        let base = self.cfg.machine.syscall;
        self.ring_try_reap(pid, ring, min, base)
    }

    /// A blocked reaper woke up: deliver if satisfied, else sleep again.
    pub(crate) fn resume_ring_reap(&mut self, pid: Pid, ring: u64, min: u32) -> SyscallOutcome {
        self.ring_try_reap(pid, ring, min, Dur::ZERO)
    }

    fn ring_try_reap(&mut self, pid: Pid, ring: u64, min: u32, base: Dur) -> SyscallOutcome {
        let m = self.cfg.machine.clone();
        let Some(r) = self.rings.get_mut(ring) else {
            // The ring vanished mid-sleep (cannot happen while the owner
            // lives, but degrade gracefully rather than hang).
            return SyscallOutcome::Done {
                cpu: base,
                ret: SyscallRet::Cqes(Vec::new()),
            };
        };
        // Clamp the wait target to what can still arrive.
        let arrivable = r.cq.len() as u32 + r.inflight;
        let eff_min = min.min(arrivable);
        if (r.cq.len() as u32) < eff_min {
            self.conts.insert(pid, Cont::RingReap { ring, min });
            return SyscallOutcome::Block {
                cpu: base,
                chan: Chan::new(ChanSpace::Ring, ring),
            };
        }
        let cqes: Vec<SpliceCqe> = r.cq.drain(..).collect();
        let n = cqes.len();
        let now = self.q.now();
        self.trace.emit(now, || TraceEvent::RingReap {
            ring,
            entries: n as u32,
        });
        self.stats.add("ring.reaped", n as u64);
        SyscallOutcome::Done {
            cpu: base + m.ring_reap_entry * n as u64,
            ret: SyscallRet::Cqes(cqes),
        }
    }

    // ----- completion-side plumbing ----------------------------------------

    /// Queues a CQE on `ring` and performs the non-empty notification:
    /// wake sleeping reapers, and post `SIGIO` if the ring asked for it
    /// and the queue was empty.
    pub(crate) fn ring_push_cqe(&mut self, ring: u64, cqe: SpliceCqe) {
        let Some(r) = self.rings.get_mut(ring) else {
            return;
        };
        if r.dead {
            return;
        }
        let was_empty = r.cq.is_empty();
        let (owner, sigio) = (r.owner, r.sigio);
        r.cq.push_back(cqe);
        if was_empty && sigio {
            self.post_sigio(owner);
        }
        self.wakeup(Chan::new(ChanSpace::Ring, ring));
    }

    /// Completion routing for a finished splice descriptor: surrender
    /// the ring slot, queue the CQE / post `SIGIO` per the entry path,
    /// and wake reapers. Completions into a dead ring (owner exited)
    /// drain silently and reclaim the ring once it empties.
    pub(crate) fn ring_deliver(&mut self, desc: u64, outcome: SpliceOutcome) {
        let Some(route) = self.rings.complete(desc) else {
            return;
        };
        let ring = route.ring;
        let Some(r) = self.rings.get_mut(ring) else {
            return;
        };
        if r.dead {
            if r.inflight == 0 {
                self.rings.rings.remove(&ring);
            }
            return;
        }
        let owner = r.owner;
        if route.queue_cqe {
            self.ring_push_cqe(
                ring,
                SpliceCqe {
                    user_data: route.user_data.unwrap_or(desc),
                    outcome,
                },
            );
        } else {
            // Legacy FASYNC: outcome is latched in `splice_outcomes`;
            // wake anything polling the ring anyway (harmless).
            self.wakeup(Chan::new(ChanSpace::Ring, ring));
        }
        if route.sigio {
            self.post_sigio(owner);
        }
    }

    /// Ring teardown at process exit.
    pub(crate) fn ring_owner_exit(&mut self, pid: Pid) {
        self.rings.owner_exit(pid);
    }

    // ----- socket plumbing (formerly `sock_splices` special cases) ----------

    /// Source-socket close is EOF for the splice draining it: clamp the
    /// target and complete once in-flight work lands.
    pub(crate) fn splice_sock_eof(&mut self, sock: SockId) {
        if let Some(desc) = self.rings.take_sock(sock) {
            self.finish_splice_now(desc);
        }
    }

    /// A datagram landed on `sock`: if a splice is draining the socket,
    /// re-arm the engine's read side (the arrival funds one more stream
    /// pull, watermarks permitting) and return `true`; otherwise the
    /// caller wakes sleeping receivers.
    pub(crate) fn splice_sock_feed(&mut self, sock: SockId) -> bool {
        let Some(desc) = self.rings.sock_desc(sock) else {
            return false;
        };
        self.enqueue_kwork(
            kproc::WorkClass::Soft,
            self.cfg.machine.splice_handler,
            crate::event::KWork::SpliceIssueReads { desc },
        );
        true
    }
}
