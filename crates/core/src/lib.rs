#![warn(missing_docs)]

//! The paper's contribution: in-kernel data paths (`splice`) on a
//! simulated Ultrix-style kernel.
//!
//! This crate assembles the substrates (`ksim`, `khw`, `kbuf`, `kfs`,
//! `kproc`, `knet`, `kdev`) into a running uniprocessor kernel
//! ([`Kernel`]): a deterministic event loop with a hardclock, a softclock
//! draining the callout list, device interrupts, a round-robin scheduler,
//! and a UNIX-ish system-call layer. On top of that substrate it
//! implements the paper's `splice(2)` (module [`splice_engine`]):
//!
//! * splice descriptors snapshotting source/destination block maps (§5.2),
//! * non-blocking `bread`/`getblk` variants with `B_CALL` completion
//!   handlers (§5.2.1),
//! * the callout-driven write side sharing the read buffer's data area
//!   (§5.2.2),
//! * watermark-based rate flow control (§5.2.3),
//! * `FASYNC`/`SIGIO` asynchronous completion and bounded-size pacing
//!   (§3, §4),
//! * socket-to-socket (UDP), framebuffer-to-socket, file-to-device and
//!   file-to-socket splices (§5.1 plus the natural extension).
//!
//! The related-work baselines of §7 ([`baselines`]) are implemented for
//! comparison benches: the [PCM91] ioctl handle-passing scheme and an
//! mmap-style copy.
//!
//! See `DESIGN.md` at the repository root for the substitution argument
//! (real 1992 hardware → calibrated simulation) and the experiment index.
//!
//! # Example
//!
//! Boot a machine, put a file on one disk, and splice it to another:
//!
//! ```
//! use khw::DiskProfile;
//! use kproc::programs::Scp;
//! use splice::KernelBuilder;
//!
//! let mut k = KernelBuilder::new()
//!     .disk("d0", DiskProfile::ramdisk())
//!     .disk("d1", DiskProfile::ramdisk())
//!     .build();
//! k.setup_file("/d0/data", 64 * 1024, 7);
//! k.cold_cache();
//!
//! k.spawn(Box::new(Scp::new("/d0/data", "/d1/copy")));
//! let horizon = k.horizon(60);
//! k.run_to_exit(horizon);
//!
//! assert_eq!(k.verify_pattern_file("/d1/copy", 64 * 1024, 7), None);
//! // The point of the paper: no user-space copies happened.
//! let m = k.metrics();
//! assert_eq!(m.copy.copyout_bytes, 0);
//! assert_eq!(m.copy.copyin_bytes, 0);
//! ```
//!
//! Every measurement the kernel takes is reachable through that typed
//! [`metrics::MetricsSnapshot`] (and the live [`ksim::Kstat`] block via
//! [`Kernel::kstat`]); the time-ordered record is the typed trace ring
//! ([`Kernel::trace`], opt-in via [`KernelBuilder::trace`]), queryable
//! through [`ksim::TraceQuery`] and exportable as Chrome trace-event
//! JSON. See `DESIGN.md` § Observability.

pub mod baselines;
pub mod endpoint;
pub mod event;
pub mod harness;
pub mod kernel;
pub mod metrics;
pub mod objects;
pub mod profile;
pub mod splice_engine;
pub mod splice_ring;
pub mod syscalls;

pub use endpoint::{caps, EndpointCaps, ObjClass};
pub use harness::KernelBuilder;
pub use kernel::{Kernel, KernelConfig};
pub use khw::{FaultOp, FaultPlan};
pub use ksim::{BlockSpan, PhaseMark, Trace, TraceEvent, TraceQuery, TraceRecord};
pub use metrics::{
    CacheMetrics, CopyMetrics, CpuMetrics, IoMetrics, LatencyMetrics, MetricsSnapshot, NetMetrics,
    SchedMetrics, SpliceMetrics,
};
pub use objects::{DiskUnitKind, FileId, FileObj};
pub use profile::{
    CacheOccupancy, CpuClassProfile, DeviceProfile, ProcProfile, ProfileSample, ProfileSnapshot,
};
pub use splice_engine::{FlowControl, OutcomeStatus, SpliceOutcome, MAX_SPLICE_RETRIES};
pub use splice_ring::RING_MAX_DEPTH;
