//! Experiment scaffolding: kernel construction and setup/verification
//! helpers that bypass timing (clearly separated from the measured paths).

use kdev::{AudioDac, Framebuffer, VideoDac};
use khw::DiskProfile;
use kproc::programs::util::pattern_bytes;
use ksim::{Dur, ObsConfig, SimTime};

use crate::kernel::{Kernel, KernelConfig};
use crate::objects::CharDev;

/// Builds a [`Kernel`] with disks and character devices.
pub struct KernelBuilder {
    cfg: KernelConfig,
    disks: Vec<(String, DiskProfile)>,
    cdevs: Vec<(String, CharDev)>,
    trace: Option<usize>,
    sample: Option<(Dur, usize)>,
    observe: Option<ObsConfig>,
}

impl Default for KernelBuilder {
    fn default() -> Self {
        Self::new()
    }
}

impl KernelBuilder {
    /// A builder with the paper's default configuration.
    pub fn new() -> KernelBuilder {
        KernelBuilder {
            cfg: KernelConfig::default(),
            disks: Vec::new(),
            cdevs: Vec::new(),
            trace: None,
            sample: None,
            observe: None,
        }
    }

    /// Enables the typed trace ring with room for `capacity` records.
    /// Without this opt-in every tracepoint stays a single branch.
    pub fn trace(mut self, capacity: usize) -> KernelBuilder {
        self.trace = Some(capacity);
        self
    }

    /// Enables the resource-accounting sampler: every `period` of
    /// simulated time a gauge sample (inflight splice work, disk queue
    /// depths, cache occupancy, per-PID CPU share) is recorded into a
    /// ring of `capacity` samples and mirrored into the trace's counter
    /// tracks. Without this opt-in no sampling work is ever scheduled
    /// and trace output is byte-identical to a sampler-free kernel.
    pub fn sample(mut self, period: Dur, capacity: usize) -> KernelBuilder {
        self.sample = Some((period, capacity));
        self
    }

    /// Reconfigures the resident request-observability pipeline
    /// (head-sampling period, SLO objective, costs). The kernel always
    /// builds with [`ObsConfig::on`]; pass [`ObsConfig::off`] for an
    /// overhead baseline, or a tightened [`ObsConfig`] to provoke SLO
    /// alerts in tests.
    pub fn observe(mut self, cfg: ObsConfig) -> KernelBuilder {
        self.observe = Some(cfg);
        self
    }

    /// Overrides the kernel configuration.
    pub fn config(mut self, cfg: KernelConfig) -> KernelBuilder {
        self.cfg = cfg;
        self
    }

    /// Mutates the configuration in place (ablation sweeps).
    pub fn tune(mut self, f: impl FnOnce(&mut KernelConfig)) -> KernelBuilder {
        f(&mut self.cfg);
        self
    }

    /// Adds a disk mounted at `/<name>`.
    pub fn disk(mut self, name: &str, profile: DiskProfile) -> KernelBuilder {
        self.disks.push((name.to_string(), profile));
        self
    }

    /// Adds an audio DAC at `path` (e.g. `/dev/speaker`).
    pub fn audio_dac(mut self, path: &str, dac: AudioDac) -> KernelBuilder {
        self.cdevs.push((path.to_string(), CharDev::Audio(dac)));
        self
    }

    /// Adds a video DAC at `path` (e.g. `/dev/video_dac`).
    pub fn video_dac(mut self, path: &str, dac: VideoDac) -> KernelBuilder {
        self.cdevs.push((path.to_string(), CharDev::Video(dac)));
        self
    }

    /// Adds a framebuffer at `path` (e.g. `/dev/fb`).
    pub fn framebuffer(mut self, path: &str, fb: Framebuffer) -> KernelBuilder {
        self.cdevs.push((path.to_string(), CharDev::Fb(fb)));
        self
    }

    /// Builds the kernel.
    pub fn build(self) -> Kernel {
        let mut k = Kernel::new(self.cfg);
        for (name, profile) in self.disks {
            k.add_disk(&name, profile);
        }
        for (path, dev) in self.cdevs {
            k.add_cdev(&path, dev);
        }
        if let Some(capacity) = self.trace {
            k.install_trace(capacity);
        }
        // After the trace: installing a trace ring replaces the trace
        // object, and the sampler registers its counter capacity on it.
        if let Some((period, capacity)) = self.sample {
            k.install_sampler(period, capacity);
        }
        if let Some(cfg) = self.observe {
            k.install_obs(cfg);
        }
        k
    }

    /// The paper's experimental machine: two disks of the given profile
    /// (source and destination filesystems on different physical disks,
    /// §6.2) mounted at `/d0` and `/d1`.
    pub fn paper_machine(profile: DiskProfile) -> KernelBuilder {
        KernelBuilder::new()
            .disk("d0", profile.clone())
            .disk("d1", profile)
    }

    /// [`KernelBuilder::paper_machine`] with RAM disks — the most common
    /// test fixture. Returns the builder (like every other constructor
    /// here); call `.build()` to get the kernel.
    pub fn paper_machine_ram() -> KernelBuilder {
        Self::paper_machine(DiskProfile::ramdisk())
    }
}

impl Kernel {
    // ----- setup/verification (timing-free, never in measured phases) -------

    /// Creates (or replaces) a file with `len` pattern bytes, writing the
    /// medium directly. Returns nothing; panics on setup errors because
    /// experiment setup must not silently degrade.
    ///
    /// # Panics
    ///
    /// Panics if the path cannot be created or the disk is full.
    pub fn setup_file(&mut self, path: &str, len: u64, seed: u64) {
        let (disk, sub) = self
            .resolve_disk_path(path)
            .unwrap_or_else(|| panic!("bad setup path {path}"));
        let unit = &mut self.disks[disk];
        let ino = match unit.fs.lookup(&sub) {
            Ok(ino) => {
                unit.fs.truncate(ino).expect("inode exists");
                ino
            }
            Err(_) => unit.fs.create(&sub).expect("creatable path"),
        };
        // Chunked writes keep memory flat for big files.
        let chunk = 1 << 20;
        let mut off = 0u64;
        while off < len {
            let n = chunk.min((len - off) as usize);
            let data = pattern_bytes(seed, off, n);
            let (kind, fs) = (&mut unit.kind, &mut unit.fs);
            fs.write_direct(kind.store_mut(), ino, off, &data)
                .expect("setup write");
            off += n as u64;
        }
        let (kind, fs) = (&mut unit.kind, &mut unit.fs);
        fs.sync(kind.store_mut());
    }

    /// Reads a file's contents straight from the medium (verification).
    ///
    /// # Panics
    ///
    /// Panics if the path does not resolve.
    pub fn dump_file(&self, path: &str) -> Vec<u8> {
        let (disk, sub) = self
            .resolve_disk_path(path)
            .unwrap_or_else(|| panic!("bad path {path}"));
        let unit = &self.disks[disk];
        let ino = unit.fs.lookup(&sub).expect("file exists");
        let size = unit.fs.size(ino);
        unit.fs
            .read_direct(unit.kind.store(), ino, 0, size as usize)
    }

    /// Verifies that a file holds exactly `len` bytes of pattern `seed`.
    /// Returns the first mismatching offset, if any.
    pub fn verify_pattern_file(&self, path: &str, len: u64, seed: u64) -> Option<u64> {
        let data = self.dump_file(path);
        if data.len() as u64 != len {
            return Some(data.len().min(len as usize) as u64);
        }
        kproc::programs::util::pattern_check(seed, 0, &data).map(|i| i as u64)
    }

    /// File size straight from the filesystem.
    ///
    /// # Panics
    ///
    /// Panics if the path does not resolve.
    pub fn file_size(&self, path: &str) -> u64 {
        let (disk, sub) = self
            .resolve_disk_path(path)
            .unwrap_or_else(|| panic!("bad path {path}"));
        let unit = &self.disks[disk];
        let ino = unit.fs.lookup(&sub).expect("file exists");
        unit.fs.size(ino)
    }

    /// Flushes all dirty blocks and metadata, waits for the devices to
    /// quiesce, then drops every cached block — the §6.1 "read cache cold
    /// start" between experiment phases.
    ///
    /// # Panics
    ///
    /// Panics if processes are still alive (cold-starting mid-experiment
    /// would corrupt the measurement) or the flush does not quiesce.
    pub fn cold_cache(&mut self) {
        assert!(
            self.procs.all_exited(),
            "cold_cache with live processes would distort measurements"
        );
        // Flush dirty blocks.
        for disk in 0..self.disks.len() {
            let dev = self.disks[disk].dev;
            for buf in self.cache.dirty_bufs(dev) {
                if !self.cache.claim_for_flush(buf) {
                    continue;
                }
                let mut fx = Vec::new();
                self.cache.bawrite(buf, &mut fx);
                self.apply_cache_effects(fx, crate::kernel::IoCtx::Kernel);
            }
        }
        // Wait for writes (and any splice stragglers) to finish.
        let horizon = self.q.now() + ksim::Dur::from_secs(120);
        self.run_until(horizon, |k| {
            k.disks.iter().all(|d| d.write_inflight == 0) && k.deferred.is_empty()
        });
        assert!(
            self.disks.iter().all(|d| d.write_inflight == 0),
            "flush did not quiesce"
        );
        // Metadata writeback (setup-grade, timing-free).
        for unit in &mut self.disks {
            let (kind, fs) = (&mut unit.kind, &mut unit.fs);
            fs.sync(kind.store_mut());
        }
        self.cache.invalidate_all();
        self.stats.bump("harness.cold_cache");
    }

    /// Runs `fsck` on every mounted filesystem, returning all errors.
    pub fn fsck_all(&mut self) -> Vec<String> {
        let mut errors = Vec::new();
        for unit in &mut self.disks {
            let (kind, fs) = (&mut unit.kind, &mut unit.fs);
            fs.sync(kind.store_mut());
            let rep = kfs::fsck(unit.kind.store());
            for e in rep.errors {
                errors.push(format!("{}: {e}", unit.name));
            }
        }
        errors
    }

    /// Convenience horizon helper: `now + secs` of simulated time.
    pub fn horizon(&self, secs: u64) -> SimTime {
        self.q.now() + ksim::Dur::from_secs(secs)
    }
}
