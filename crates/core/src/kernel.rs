//! The assembled kernel: event loop, clock, interrupts, scheduling, and
//! the kernel-work engine.
//!
//! # Execution model
//!
//! One [`ksim::EventQueue`] drives everything. CPU time is arbitrated by
//! [`kproc::CpuEngine`]: kernel work (interrupt bottom halves, softclock
//! callout payloads, splice handler chains, RAM-disk strategy copies) is
//! *admitted* — charged and serialised — and its state changes are
//! *applied* at the end of its execution window ([`crate::event::Event::Apply`]).
//! Work admitted while a user process runs extends that process's current
//! chunk (the penalty mechanism in [`kproc::Scheduler`]), which is how
//! interrupt load becomes visible to the paper's CPU-availability metric.
//!
//! Deferrable (softclock-class) work beyond the per-tick budget queues in
//! `deferred` and runs either in later ticks' budgets or — without any
//! budget — whenever no user process wants the CPU ([`Kernel::maybe_pump`]).

use std::collections::{HashMap, VecDeque};

use kbuf::{BufId, Cache, DevId, IoDir, IodoneTag};
use kfs::{Fs, FsIo};
use khw::{Disk, DiskProfile, MachineProfile, RamDisk};
use knet::Net;
use kproc::{
    Admit, Chan, ChanSpace, CpuEngine, Pid, ProcState, ProcTable, Program, RunKind, Scheduler, Sig,
    Step, WorkClass,
};
use ksim::{Callout, Dur, EventQueue, SimTime, Stats, Trace, TraceEvent};

use crate::event::{Event, KWork};
use crate::objects::{CharDev, CharDevUnit, DiskUnit, DiskUnitKind, FileTable};
use crate::splice_engine::{FlowControl, SpliceDesc};
use crate::syscalls::{AfterCpu, Cont, SyscallOutcome, WakeAction};

/// Static kernel configuration.
#[derive(Clone)]
pub struct KernelConfig {
    /// Machine cost table.
    pub machine: MachineProfile,
    /// Buffer cache size in bytes (the paper's machine: 3.2 MB).
    pub cache_bytes: usize,
    /// Filesystem block size (8 KB).
    pub block_size: u32,
    /// Inode slots per filesystem.
    pub ninodes: u32,
    /// Splice flow-control watermarks (§5.2.3).
    pub flow: FlowControl,
    /// Period of the `update` daemon's delayed-write flush (`None`
    /// disables it). Classic UNIX ran `update` every 30 seconds.
    pub update_interval: Option<Dur>,
}

impl Default for KernelConfig {
    fn default() -> Self {
        KernelConfig {
            machine: MachineProfile::decstation_5000_200(),
            cache_bytes: 3_276_800, // 3.2 MB → 400 8 KB buffers
            block_size: 8192,
            ninodes: 512,
            flow: FlowControl::default(),
            update_interval: Some(Dur::from_secs(30)),
        }
    }
}

/// Whose CPU pays for synchronous (RAM-disk) device work.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum IoCtx {
    /// A process is in the kernel: synchronous work is part of the system
    /// call (returned as a cost for the syscall chunk).
    Process,
    /// Asynchronous kernel context (splice chains, flush writes):
    /// synchronous work becomes deferrable kernel work.
    Kernel,
}

/// The kernel. Built with [`crate::harness::KernelBuilder`].
pub struct Kernel {
    pub(crate) cfg: KernelConfig,
    pub(crate) q: EventQueue<Event>,
    pub(crate) callout: Callout<KWork>,
    /// Scratch for `on_tick`'s callout drain, reused so softclock does
    /// not allocate per tick in steady state.
    pub(crate) callout_due: Vec<KWork>,
    pub(crate) tick: u64,
    pub(crate) cpu: CpuEngine,
    pub(crate) sched: Scheduler,
    pub(crate) procs: ProcTable,
    pub(crate) cache: Cache,
    pub(crate) disks: Vec<DiskUnit>,
    pub(crate) devmap: HashMap<DevId, usize>,
    pub(crate) net: Net,
    pub(crate) cdevs: Vec<CharDevUnit>,
    pub(crate) files: FileTable,
    pub(crate) splices: HashMap<u64, SpliceDesc>,
    /// How finished splices ended (bytes moved + errno), kept after the
    /// descriptor is torn down for partial-transfer audits.
    pub(crate) splice_outcomes: HashMap<u64, crate::splice_engine::SpliceOutcome>,
    pub(crate) next_splice: u64,
    pub(crate) conts: HashMap<Pid, Cont>,
    pub(crate) pending_after: HashMap<Pid, AfterCpu>,
    pub(crate) timed_actions: HashMap<Pid, WakeAction>,
    pub(crate) iodone_map: HashMap<IodoneTag, KWork>,
    pub(crate) next_tag: u64,
    /// Splice rings plus the unified in-flight routing table (every
    /// splice entry path) and the socket→descriptor index.
    pub(crate) rings: crate::splice_ring::RingTable,
    pub(crate) deferred: VecDeque<(Dur, KWork)>,
    pub(crate) dispatch_pending: bool,
    /// A wakeup boosted a process while a syscall chunk was on the CPU;
    /// reschedule at the next kernel exit.
    pub(crate) resched: bool,
    pub(crate) itimer_callouts: HashMap<Pid, ksim::CalloutId>,
    /// In-flight SCSI requests: (disk, token) → (buffer, direction).
    pub(crate) io_tokens: HashMap<(usize, u64), (BufId, IoDir)>,
    pub(crate) next_io_token: u64,
    /// Splice payloads waiting for a destination host's link backlog to
    /// drain below the send-buffer limit, FIFO per host. At most one
    /// [`KWork::SpliceSockDrain`] callout is in flight per host (its
    /// presence in `park_drains`), so a thousand parked connections cost
    /// one timer, not a retry herd.
    pub(crate) parked_sends: HashMap<u32, VecDeque<crate::endpoint::ParkedSend>>,
    /// Hosts with a parked-queue drain callout already scheduled.
    pub(crate) park_drains: std::collections::HashSet<u32>,
    /// [PCM91] baseline: kernel-held data handles.
    pub(crate) handles: HashMap<i64, Vec<u8>>,
    pub(crate) next_handle: i64,
    pub(crate) stats: Stats,
    /// Structured statistics: splice spans plus latency histograms
    /// (exposed through [`Kernel::kstat`] and [`Kernel::metrics`]).
    pub(crate) kstat: ksim::Kstat,
    /// Issue times of in-flight buffer transfers, for the bread/bwrite
    /// completion histograms.
    pub(crate) io_issued: HashMap<BufId, SimTime>,
    pub(crate) trace: Trace,
    /// The resource-accounting sampler, when enabled via
    /// [`KernelBuilder::sample`](crate::KernelBuilder::sample).
    pub(crate) sampler: Option<crate::profile::Sampler>,
    /// The resident request-observability pipeline: head-sampled
    /// request spans with tail retention, the SLO burn-rate monitor,
    /// and the flight recorder. On by default; reconfigure via
    /// [`KernelBuilder::observe`](crate::KernelBuilder::observe).
    pub(crate) obs: ksim::Observability,
}

/// Default trace-ring capacity when tracing is toggled on without the
/// builder ([`KernelBuilder::trace`](crate::KernelBuilder::trace) sets
/// an explicit one).
pub(crate) const DEFAULT_TRACE_CAPACITY: usize = 400_000;

impl Kernel {
    /// Builds a kernel with no disks or devices (the builder adds them).
    pub(crate) fn new(cfg: KernelConfig) -> Kernel {
        let nbufs = cfg.cache_bytes / cfg.block_size as usize;
        let mut k = Kernel {
            cpu: CpuEngine::new(cfg.machine.softwork_budget_per_tick),
            sched: Scheduler::new(cfg.machine.quantum),
            cache: Cache::new(nbufs.max(8), cfg.block_size as usize),
            cfg,
            q: EventQueue::new(),
            callout: Callout::new(),
            callout_due: Vec::new(),
            tick: 0,
            procs: ProcTable::new(),
            disks: Vec::new(),
            devmap: HashMap::new(),
            net: Net::new(),
            cdevs: Vec::new(),
            files: FileTable::new(),
            splices: HashMap::new(),
            splice_outcomes: HashMap::new(),
            next_splice: 1,
            conts: HashMap::new(),
            pending_after: HashMap::new(),
            timed_actions: HashMap::new(),
            iodone_map: HashMap::new(),
            next_tag: 1,
            rings: crate::splice_ring::RingTable::new(),
            deferred: VecDeque::new(),
            dispatch_pending: false,
            resched: false,
            itimer_callouts: HashMap::new(),
            io_tokens: HashMap::new(),
            next_io_token: 1,
            parked_sends: HashMap::new(),
            park_drains: std::collections::HashSet::new(),
            handles: HashMap::new(),
            next_handle: 1,
            stats: Stats::new(),
            kstat: ksim::Kstat::new(),
            io_issued: HashMap::new(),
            trace: Trace::new(DEFAULT_TRACE_CAPACITY),
            sampler: None,
            obs: ksim::Observability::new(ksim::ObsConfig::on()),
        };
        // Boot the clock and the update daemon.
        let tick = k.cfg.machine.tick();
        k.q.schedule(SimTime::ZERO + tick, Event::Tick);
        if let Some(period) = k.cfg.update_interval {
            let ticks = (period.as_ns() / tick.as_ns()).max(1);
            k.callout.schedule(0, ticks, KWork::UpdateFlush);
        }
        k
    }

    // ----- construction helpers (used by the builder) ----------------------

    /// Adds a disk with a fresh filesystem mounted at `/<name>`.
    pub(crate) fn add_disk(&mut self, name: &str, profile: DiskProfile) -> usize {
        let mut kind = if profile.kind == khw::DiskKind::Ram {
            DiskUnitKind::Ram(RamDisk::new(profile))
        } else {
            DiskUnitKind::Scsi(Disk::new(profile))
        };
        let fs = Fs::mkfs(kind.store_mut(), self.cfg.block_size, self.cfg.ninodes);
        let dev = DevId(self.disks.len() as u32);
        let idx = self.disks.len();
        self.devmap.insert(dev, idx);
        self.disks.push(DiskUnit {
            name: name.to_string(),
            kind,
            fs,
            dev,
            write_inflight: 0,
        });
        idx
    }

    /// Registers a character device at `path` (must start with `/dev/`).
    pub(crate) fn add_cdev(&mut self, path: &str, dev: CharDev) -> usize {
        assert!(path.starts_with("/dev/"), "character devices live in /dev");
        self.cdevs.push(CharDevUnit {
            path: path.to_string(),
            dev,
            write_fail_after: None,
        });
        self.cdevs.len() - 1
    }

    // ----- public accessors -------------------------------------------------

    /// The current simulated time.
    pub fn now(&self) -> SimTime {
        self.q.now()
    }

    /// The process table (accounting reads).
    pub fn procs(&self) -> &ProcTable {
        &self.procs
    }

    /// The buffer cache (stats/assertions in tests).
    pub fn cache(&self) -> &Cache {
        &self.cache
    }

    /// The network stack (stats in tests).
    pub fn net(&self) -> &Net {
        &self.net
    }

    /// Mutable network stack (scenario setup: link models, buffer
    /// limits).
    pub fn net_mut(&mut self) -> &mut Net {
        &mut self.net
    }

    /// Mounted disks (stats/store access in tests and harnesses).
    pub fn disks(&self) -> &[DiskUnit] {
        &self.disks
    }

    /// Mutable disk access (experiment setup).
    pub fn disks_mut(&mut self) -> &mut [DiskUnit] {
        &mut self.disks
    }

    /// Installs a fault plan on disk `idx` (see [`khw::FaultPlan`]). The
    /// plan's device identity is set to the disk index so two disks
    /// sharing a seed still fail independently.
    pub fn set_fault_plan(&mut self, idx: usize, plan: khw::FaultPlan) {
        let plan = plan.device(idx as u64);
        match &mut self.disks[idx].kind {
            DiskUnitKind::Scsi(d) => d.set_fault_plan(Some(plan)),
            DiskUnitKind::Ram(rd) => rd.set_fault_plan(Some(plan)),
        }
    }

    /// Arms an injected write failure on character device `cdev`: once
    /// `bytes` more accepted bytes have been delivered, the next splice
    /// delivery to the device fails with `EIO` and aborts its splice.
    pub fn set_cdev_write_failure(&mut self, cdev: usize, bytes: u64) {
        self.cdevs[cdev].write_fail_after = Some(bytes);
    }

    /// Number of armed callout entries (the `update` daemon, when
    /// enabled, permanently holds one). Leak assertions in fault tests
    /// check this returns to its quiescent value after an abort.
    pub fn pending_callouts(&self) -> usize {
        self.callout.len()
    }

    /// Character devices (assertions in tests and examples).
    pub fn cdevs(&self) -> &[CharDevUnit] {
        &self.cdevs
    }

    /// Enables the typed trace ring (and the cache's event log feeding
    /// it). Prefer [`KernelBuilder::trace`](crate::KernelBuilder::trace)
    /// for an explicit capacity.
    pub fn set_trace(&mut self, on: bool) {
        self.trace.set_enabled(on);
        self.cache.set_event_log(on);
    }

    /// Replaces the trace ring with an enabled one of `capacity`
    /// records (the builder's opt-in path).
    pub(crate) fn install_trace(&mut self, capacity: usize) {
        self.trace = Trace::new(capacity);
        self.set_trace(true);
    }

    /// The typed trace ring (queries, spans, Chrome export).
    pub fn trace(&self) -> &Trace {
        &self.trace
    }

    /// Dumps the trace ring as text.
    pub fn trace_dump(&self) -> String {
        self.trace.dump()
    }

    /// Replaces the observability pipeline with one built from `cfg`
    /// (the builder's [`observe`](crate::KernelBuilder::observe) path).
    pub(crate) fn install_obs(&mut self, cfg: ksim::ObsConfig) {
        self.obs = ksim::Observability::new(cfg);
    }

    /// The resident request-observability pipeline (committed spans,
    /// SLO counters, the latency hist with exemplars, the flight dump).
    pub fn obs(&self) -> &ksim::Observability {
        &self.obs
    }

    /// Renders the frozen flight dump as a `FLIGHT_<workload>.json`
    /// document, if an SLO alert fired.
    pub fn flight_json(&self, workload: &str) -> Option<ksim::Json> {
        self.obs.flight().map(|f| f.to_json(workload))
    }

    /// Close-side observability: commit or discard the connection's
    /// staged span, feed the SLO monitor, and on a burn-rate alert emit
    /// the tracepoint, bump `slo.*`, and freeze the flight recorder.
    /// Returns the simulated CPU to charge the closing path.
    pub(crate) fn obs_close(&mut self, sock: u32) -> Dur {
        let now = self.q.now();
        let out = self.obs.note_close(now, sock);
        if out.observed {
            self.stats.bump("slo.request");
            if out.violation {
                self.stats.bump("slo.violation");
            }
        }
        if let Some(alert) = out.alert {
            self.stats.bump("slo.alert");
            self.trace.emit(now, || TraceEvent::SloAlert {
                burn_milli: alert.burn_milli,
                window_viol: alert.window_viol,
                window_req: alert.window_req,
            });
            let keep = self.obs.cfg().flight_k;
            let skip = self.trace.len().saturating_sub(keep);
            let records: Vec<_> = self.trace.records().skip(skip).copied().collect();
            self.obs.freeze_flight(now, alert, records);
        }
        out.cost
    }

    /// Timestamps and records the cache's accumulated hit/miss/evict
    /// events. The cache has no clock, so the kernel drains its log
    /// after each dispatched event; simulated time cannot advance inside
    /// one event, so the stamp is exact.
    fn drain_cache_trace(&mut self) {
        if !self.trace.enabled() {
            return;
        }
        let now = self.q.now();
        for e in self.cache.take_events() {
            self.trace.emit(now, || match e {
                kbuf::CacheEvent::Hit { dev, blkno } => TraceEvent::CacheHit { dev: dev.0, blkno },
                kbuf::CacheEvent::Miss { dev, blkno } => {
                    TraceEvent::CacheMiss { dev: dev.0, blkno }
                }
                kbuf::CacheEvent::Evict { dev, blkno } => {
                    TraceEvent::CacheEvict { dev: dev.0, blkno }
                }
            });
        }
    }

    // ----- process lifecycle ------------------------------------------------

    /// Spawns a program as a new runnable process.
    pub fn spawn(&mut self, program: Box<dyn Program>) -> Pid {
        let pid = self.procs.spawn(program, self.q.now());
        // The table creates processes in `Runnable`; queue it directly.
        self.sched.enqueue(pid);
        self.try_dispatch();
        pid
    }

    pub(crate) fn make_runnable(&mut self, pid: Pid) {
        let p = self.procs.must_mut(pid);
        if matches!(p.state, ProcState::Exited(_)) {
            return;
        }
        if matches!(p.state, ProcState::Runnable | ProcState::Running) {
            return;
        }
        let woken_cpu = p.recent_cpu;
        self.procs.set_state(pid, ProcState::Runnable);
        let now = self.q.now();
        self.trace
            .emit(now, || TraceEvent::SchedWakeup { pid: pid.0 });
        self.sched.enqueue(pid);
        // A process waking from a sleep returns at elevated priority, the
        // classic UNIX discipline — but only while its decayed CPU usage
        // gives it a better priority than the incumbent (4.3BSD p_cpu).
        // Kernel mode (syscall chunks) is not preemptible; those
        // reschedule at kernel exit.
        if let Some(cur) = self.sched.current() {
            let kind = cur.kind;
            let incumbent_cpu = self.procs.must(cur.pid).recent_cpu;
            // Hysteresis: preempt only from a clearly better priority
            // band (half the incumbent's decayed usage), the effect of
            // BSD's quantised priority levels.
            if woken_cpu.as_ns() * 2 < incumbent_cpu.as_ns() {
                match kind {
                    RunKind::Compute { .. } => self.preempt_current(),
                    RunKind::SyscallCpu => self.resched = true,
                }
            }
        }
        self.try_dispatch();
    }

    /// Preempts the current (user-mode) chunk: the unexecuted remainder is
    /// saved as pending compute and the process requeued.
    fn preempt_current(&mut self) {
        let now = self.q.now();
        let cur = self.sched.stop_current().expect("preempt without current");
        let RunKind::Compute { remaining } = cur.kind else {
            panic!("preempt of non-preemptible chunk");
        };
        let left_in_chunk = cur.remaining_at(now);
        let total = left_in_chunk + remaining;
        let p = self.procs.must_mut(cur.pid);
        // The chunk was charged in full when it started; refund what did
        // not run.
        p.acct.user_time = p.acct.user_time.saturating_sub(left_in_chunk);
        p.recent_cpu = p.recent_cpu.saturating_sub(left_in_chunk);
        p.acct.icsw += 1;
        if !total.is_zero() {
            p.pending_compute = Some(total);
        }
        self.procs.set_state(cur.pid, ProcState::Runnable);
        self.sched.enqueue(cur.pid);
        self.stats.bump("sched.preemptions");
        self.trace
            .emit(now, || TraceEvent::SchedPreempt { pid: cur.pid.0 });
    }

    pub(crate) fn wakeup(&mut self, chan: Chan) {
        for pid in self.procs.sleepers(chan) {
            self.make_runnable(pid);
        }
        // Close the lost-wakeup window: a process whose system call has
        // decided to sleep on `chan` but whose CPU chunk has not finished
        // yet must not go to sleep — it re-checks instead.
        let pending: Vec<Pid> = self
            .pending_after
            .iter()
            .filter(|(_, a)| matches!(a, AfterCpu::Sleep(c) if *c == chan))
            .map(|(pid, _)| *pid)
            .collect();
        for pid in pending {
            self.pending_after.insert(pid, AfterCpu::Retry);
            self.stats.bump("sched.wakeup_races");
        }
    }

    pub(crate) fn post_signal(&mut self, pid: Pid, sig: Sig) {
        let Some(p) = self.procs.get_mut(pid) else {
            return;
        };
        if p.exited() || !p.catches(sig) {
            return;
        }
        p.pending_sigs.push(sig);
        if let ProcState::Sleeping(chan) = p.state {
            if chan.space == ChanSpace::Pause {
                self.make_runnable(pid);
            }
        } else if matches!(
            self.pending_after.get(&pid),
            Some(AfterCpu::Sleep(c)) if c.space == ChanSpace::Pause
        ) {
            // Signal raced the pause(2) entry: do not sleep.
            self.pending_after.insert(pid, AfterCpu::Retry);
        }
    }

    // ----- kernel work engine -----------------------------------------------

    /// Admits kernel work and schedules its application. Work admitted
    /// while a user chunk runs extends that chunk (the penalty).
    pub(crate) fn enqueue_kwork(&mut self, class: WorkClass, cost: Dur, work: KWork) {
        let now = self.q.now();
        match self.cpu.admit(now, cost, class) {
            Admit::Run(w) => {
                if let Some(cur) = self.sched.current_mut() {
                    cur.penalty += w.cost();
                }
                self.q.schedule(w.end, Event::Apply(work));
            }
            Admit::Deferred => {
                self.deferred.push_back((cost, work));
            }
        }
    }

    /// Runs deferred soft work when the CPU would otherwise idle.
    pub(crate) fn maybe_pump(&mut self) {
        if self.deferred.is_empty() {
            return;
        }
        if self.procs.any_user_demand() || self.dispatch_pending {
            return;
        }
        let (cost, work) = self.deferred.pop_front().unwrap();
        let now = self.q.now();
        let w = self.cpu.admit_idle(now, cost);
        self.q.schedule(w.end, Event::Apply(work));
    }

    /// Allocates a completion-handler tag bound to `work`.
    pub(crate) fn new_iodone(&mut self, work: KWork) -> IodoneTag {
        let tag = IodoneTag(self.next_tag);
        self.next_tag += 1;
        self.iodone_map.insert(tag, work);
        tag
    }

    // ----- cache effect handling ---------------------------------------------

    /// Carries out buffer-cache effects. Returns the synchronous CPU cost
    /// incurred (RAM-disk transfers in process context).
    pub(crate) fn apply_cache_effects(&mut self, effects: Vec<kbuf::Effect>, ctx: IoCtx) -> Dur {
        let mut sync_cost = Dur::ZERO;
        for e in effects {
            match e {
                kbuf::Effect::StartIo {
                    buf,
                    dev,
                    blkno,
                    len,
                    dir,
                } => {
                    sync_cost += self.start_io(buf, dev, blkno, len, dir, ctx);
                }
                kbuf::Effect::Wakeup { buf } => {
                    self.wakeup(Chan::new(ChanSpace::Buf, buf.0 as u64));
                }
                kbuf::Effect::BuffersAvailable => {
                    self.wakeup(Chan::new(ChanSpace::AnyBuf, 0));
                }
            }
        }
        sync_cost
    }

    /// Starts one device transfer for a cache buffer. Returns synchronous
    /// CPU cost (RAM disk in process context); asynchronous transfers
    /// return zero and complete through events.
    fn start_io(
        &mut self,
        buf: BufId,
        dev: DevId,
        blkno: u64,
        len: usize,
        dir: IoDir,
        ctx: IoCtx,
    ) -> Dur {
        let disk_idx = *self.devmap.get(&dev).expect("I/O to unknown device");
        let now = self.q.now();
        self.io_issued.insert(buf, now);
        self.trace.emit(now, || TraceEvent::DiskIssue {
            disk: disk_idx as u32,
            blkno,
            len: len as u32,
            write: dir == IoDir::Write,
        });
        let sector = blkno * (self.cfg.block_size as u64 / khw::SECTOR_SIZE as u64);
        if dir == IoDir::Write {
            self.disks[disk_idx].write_inflight += 1;
            self.stats.add("io.write_bytes", len as u64);
        } else {
            self.stats.add("io.read_bytes", len as u64);
        }
        // Reads that enter service immediately (an idle SCSI drive, or the
        // synchronous RAM-disk strategy call) waited zero time in the
        // device queue; queued SCSI reads are stamped when the interrupt
        // handler starts the next request.
        let mut zero_queue_wait = dir == IoDir::Read;
        let cost = match &mut self.disks[disk_idx].kind {
            DiskUnitKind::Scsi(d) => {
                let op = match dir {
                    IoDir::Read => khw::IoOp::Read,
                    IoDir::Write => khw::IoOp::Write,
                };
                let data = if dir == IoDir::Write {
                    Some(self.cache.data(buf).to_vec())
                } else {
                    None
                };
                let token = self.next_io_token;
                self.next_io_token += 1;
                self.io_tokens.insert((disk_idx, token), (buf, dir));
                self.stats.add("copy.driver_bytes", len as u64);
                match d.submit(now, token, op, sector, len, data) {
                    Some(started) => {
                        self.q.schedule(
                            started.finish,
                            Event::DiskIntr {
                                disk: disk_idx,
                                token: started.token,
                            },
                        );
                    }
                    None => zero_queue_wait = false,
                }
                Dur::ZERO
            }
            DiskUnitKind::Ram(rd) => {
                match ctx {
                    IoCtx::Process => {
                        // Synchronous strategy call in the caller's
                        // context: do the copy, complete inline.
                        let (cost, error) = match dir {
                            IoDir::Read => {
                                let (data, cost, error) = rd.read_checked(sector, len);
                                if let Some(data) = data {
                                    self.cache.data(buf).fill_from(&data);
                                }
                                (cost, error)
                            }
                            IoDir::Write => {
                                rd.write_checked(sector, &self.cache.data(buf).to_vec())
                            }
                        };
                        self.stats.add("copy.driver_bytes", len as u64);
                        self.finish_io(disk_idx, buf, dir, error);
                        cost
                    }
                    IoCtx::Kernel => {
                        let cost = rd.copy_cost(len);
                        self.enqueue_kwork(
                            WorkClass::Soft,
                            cost,
                            KWork::RamIo {
                                disk: disk_idx,
                                buf,
                                dir,
                            },
                        );
                        Dur::ZERO
                    }
                }
            }
        };
        if zero_queue_wait {
            self.kstat.stages.read_queue_wait.record(0);
        }
        cost
    }

    /// Completion bookkeeping common to all devices: inflight counts,
    /// fsync wakeups, `biodone` (with `B_ERROR` when the device failed)
    /// and handler dispatch.
    pub(crate) fn finish_io(&mut self, disk_idx: usize, buf: BufId, dir: IoDir, error: bool) {
        if let Some(at) = self.io_issued.remove(&buf) {
            let lat = self.q.now().since(at).as_ns();
            match dir {
                IoDir::Read => self.kstat.bread_latency.record(lat),
                IoDir::Write => self.kstat.bwrite_latency.record(lat),
            }
        }
        if dir == IoDir::Write {
            let d = &mut self.disks[disk_idx];
            d.write_inflight -= 1;
            if d.write_inflight == 0 {
                self.wakeup(Chan::new(ChanSpace::Fsync, disk_idx as u64));
            }
        }
        let now = self.q.now();
        if error {
            self.stats.bump("io.errors");
            let blkno = self.cache.identity(buf).map_or(0, |(_, b)| b);
            self.trace.emit(now, || TraceEvent::DiskError {
                disk: disk_idx as u32,
                blkno,
                write: dir == IoDir::Write,
            });
        }
        self.trace
            .emit(now, || TraceEvent::CacheBiodone { buf: buf.0 });
        let mut fx = Vec::new();
        let tag = self.cache.biodone(buf, error, &mut fx);
        let sync = self.apply_cache_effects(fx, IoCtx::Kernel);
        debug_assert!(sync.is_zero(), "biodone must not start sync I/O");
        if let Some(tag) = tag {
            let work = self
                .iodone_map
                .remove(&tag)
                .expect("B_CALL tag without registered handler");
            let cost = self.cfg.machine.splice_handler;
            self.enqueue_kwork(WorkClass::Soft, cost, work);
        }
    }

    // ----- metadata I/O model ------------------------------------------------

    /// Time to perform `io` worth of metadata traffic on `disk` — charged
    /// as a timed block of the calling process (see the crate docs for the
    /// metadata-in-core design).
    pub(crate) fn meta_io_time(&self, disk_idx: usize, io: FsIo) -> Dur {
        if io.ops == 0 {
            return Dur::ZERO;
        }
        match &self.disks[disk_idx].kind {
            DiskUnitKind::Scsi(d) => {
                let p = d.profile();
                let per_op = p.per_request + p.avg_rotation / 2;
                per_op * io.ops as u64 + Dur::for_bytes(io.read + io.written, p.media_bps)
            }
            DiskUnitKind::Ram(rd) => rd.copy_cost(((io.read + io.written) as usize).max(512)),
        }
    }

    // ----- scheduler integration ----------------------------------------------

    pub(crate) fn try_dispatch(&mut self) {
        if self.dispatch_pending || self.sched.current().is_some() {
            return;
        }
        let Some(pid) = self.sched.take_next() else {
            return;
        };
        self.dispatch_pending = true;
        let now = self.q.now();
        let cost = self.cfg.machine.ctx_switch;
        match self.cpu.admit(now, cost, WorkClass::Intr) {
            Admit::Run(w) => {
                self.q.schedule(w.end, Event::Dispatch { pid });
            }
            Admit::Deferred => unreachable!("Intr work is never deferred"),
        }
        self.stats.bump("sched.ctx_switches");
    }

    /// Starts a run chunk for `pid` and schedules its completion.
    fn start_chunk(&mut self, pid: Pid, kind: RunKind, dur: Dur, quantum_left: Dur) {
        let now = self.q.now();
        self.trace.emit(now, || TraceEvent::SchedRun {
            pid: pid.0,
            ns: dur.as_ns(),
        });
        let start = if now > self.cpu.busy_until() {
            now
        } else {
            self.cpu.busy_until()
        };
        let gen = self.sched.start_run(pid, kind, start, dur, quantum_left);
        self.procs.set_state(pid, ProcState::Running);
        self.q.schedule(start + dur, Event::UserDone { pid, gen });
    }

    /// Advances a process: resume a pending syscall continuation, finish a
    /// preempted compute, or step the program.
    pub(crate) fn run_process(&mut self, pid: Pid, quantum_left: Dur) {
        // A wakeup during the last kernel chunk demands a reschedule at
        // kernel exit (= here).
        if self.resched {
            self.resched = false;
            if self.sched.queued() > 0 {
                self.procs.must_mut(pid).acct.icsw += 1;
                self.procs.set_state(pid, ProcState::Runnable);
                self.sched.enqueue(pid);
                self.try_dispatch();
                return;
            }
        }
        let mut quantum_left = quantum_left;
        // Quantum bookkeeping: refresh if nobody is waiting, else preempt.
        if quantum_left.is_zero() {
            if self.sched.queued() > 0 {
                self.procs.must_mut(pid).acct.icsw += 1;
                self.procs.set_state(pid, ProcState::Runnable);
                self.sched.enqueue(pid);
                self.try_dispatch();
                return;
            }
            quantum_left = self.sched.quantum();
        }

        // Compute left over from a quantum preemption?
        if let Some(rem) = self.procs.must_mut(pid).pending_compute.take() {
            let chunk = rem.min(quantum_left);
            let p = self.procs.must_mut(pid);
            p.acct.user_time += chunk;
            p.recent_cpu += chunk;
            self.start_chunk(
                pid,
                RunKind::Compute {
                    remaining: rem - chunk,
                },
                chunk,
                quantum_left - chunk,
            );
            return;
        }

        // A blocked system call to resume?
        if let Some(cont) = self.conts.remove(&pid) {
            let out = self.resume_cont(pid, cont);
            self.apply_syscall_outcome(pid, out, quantum_left);
            return;
        }

        // Delivered return value from a timed wake?
        if let Some(AfterCpu::Deliver(ret)) = self.pending_after.remove(&pid) {
            self.procs.must_mut(pid).ctx.ret = Some(ret);
        }

        // Step the program.
        let step = {
            let p = self.procs.must_mut(pid);
            p.ctx.now = self.q.now();
            p.ctx.signals = std::mem::take(&mut p.pending_sigs);
            p.program.step(&mut p.ctx)
        };
        match step {
            Step::Compute(d) => {
                let chunk = d.min(quantum_left);
                let p = self.procs.must_mut(pid);
                p.acct.user_time += chunk;
                p.recent_cpu += chunk;
                self.start_chunk(
                    pid,
                    RunKind::Compute {
                        remaining: d - chunk,
                    },
                    chunk,
                    quantum_left - chunk,
                );
            }
            Step::Syscall(req) => {
                self.procs.must_mut(pid).acct.syscalls += 1;
                let out = self.exec_syscall(pid, req);
                self.apply_syscall_outcome(pid, out, quantum_left);
            }
            Step::Exit(code) => self.do_exit(pid, code),
        }
    }

    pub(crate) fn apply_syscall_outcome(
        &mut self,
        pid: Pid,
        out: SyscallOutcome,
        quantum_left: Dur,
    ) {
        let (cpu, after) = match out {
            SyscallOutcome::Done { cpu, ret } => (cpu, AfterCpu::Deliver(ret)),
            SyscallOutcome::Block { cpu, chan } => (cpu, AfterCpu::Sleep(chan)),
            SyscallOutcome::BlockUntil { cpu, until, then } => {
                (cpu, AfterCpu::SleepUntil { until, then })
            }
        };
        self.pending_after.insert(pid, after);
        let p = self.procs.must_mut(pid);
        p.acct.sys_time += cpu;
        p.recent_cpu += cpu;
        // System-call time consumes quantum too (it is still this
        // process's CPU); kernel mode is just not *preempted* mid-chunk.
        let quantum_left = quantum_left.saturating_sub(cpu);
        self.start_chunk(pid, RunKind::SyscallCpu, cpu, quantum_left);
    }

    fn do_exit(&mut self, pid: Pid, code: i32) {
        // Release every descriptor.
        for fd in self.files.fds_of(pid) {
            self.close_fd(pid, fd);
        }
        if let Some(id) = self.itimer_callouts.remove(&pid) {
            self.callout.cancel(id);
        }
        // Rings die with their owner; in-flight entries drain silently.
        self.ring_owner_exit(pid);
        let now = self.q.now();
        self.procs.must_mut(pid).ended = Some(now);
        self.procs.set_state(pid, ProcState::Exited(code));
        self.stats.bump("proc.exits");
        self.try_dispatch();
    }

    // ----- event dispatch -----------------------------------------------------

    fn on_user_done(&mut self, pid: Pid, gen: u64) {
        if !self.sched.is_current(pid, gen) {
            return; // stale
        }
        let cur = *self.sched.current().unwrap();
        if !cur.penalty.is_zero() {
            // Kernel work stole time from this chunk; push it out.
            let end = cur.chunk_end + cur.penalty;
            let g2 = self.sched.rearm_current(end);
            self.q.schedule(end, Event::UserDone { pid, gen: g2 });
            return;
        }
        let run = self.sched.stop_current().unwrap();
        match run.kind {
            RunKind::Compute { remaining } if !remaining.is_zero() => {
                // Quantum slice ended mid-compute.
                if self.sched.queued() > 0 {
                    let p = self.procs.must_mut(pid);
                    p.acct.icsw += 1;
                    p.pending_compute = Some(remaining);
                    self.procs.set_state(pid, ProcState::Runnable);
                    self.sched.enqueue(pid);
                    self.try_dispatch();
                } else {
                    // Nobody waiting: keep computing on a fresh quantum.
                    let q = self.sched.quantum();
                    let chunk = remaining.min(q);
                    let p = self.procs.must_mut(pid);
                    p.acct.user_time += chunk;
                    p.recent_cpu += chunk;
                    self.start_chunk(
                        pid,
                        RunKind::Compute {
                            remaining: remaining - chunk,
                        },
                        chunk,
                        q - chunk,
                    );
                }
            }
            RunKind::Compute { .. } => {
                self.run_process(pid, run.quantum_left);
            }
            RunKind::SyscallCpu => {
                let after = self
                    .pending_after
                    .remove(&pid)
                    .expect("syscall chunk without after-action");
                match after {
                    AfterCpu::Deliver(ret) => {
                        self.procs.must_mut(pid).ctx.ret = Some(ret);
                        self.run_process(pid, run.quantum_left);
                    }
                    AfterCpu::Sleep(chan) => {
                        let now = self.q.now();
                        self.trace.emit(now, || TraceEvent::SchedSleep {
                            pid: pid.0,
                            chan: chan.id,
                        });
                        self.procs.must_mut(pid).acct.vcsw += 1;
                        self.procs.set_state(pid, ProcState::Sleeping(chan));
                        // The block is itself the reschedule.
                        self.resched = false;
                        self.try_dispatch();
                    }
                    AfterCpu::Retry => {
                        // The awaited event happened during the chunk:
                        // resume the continuation at once.
                        self.run_process(pid, run.quantum_left);
                    }
                    AfterCpu::SleepUntil { until, then } => {
                        self.procs.must_mut(pid).acct.vcsw += 1;
                        self.procs.set_state(
                            pid,
                            ProcState::Sleeping(Chan::new(ChanSpace::Dev, u64::MAX)),
                        );
                        self.timed_actions.insert(pid, then);
                        let at = until.max(self.q.now());
                        self.q.schedule(at, Event::TimedWake { pid });
                        self.try_dispatch();
                    }
                }
            }
        }
    }

    fn on_tick(&mut self) {
        self.tick += 1;
        self.cpu.new_tick();
        // Priority decay (the schedcpu analogue): halve every quarter
        // second so recent hogs lose their wakeup-preemption edge.
        if self.tick.is_multiple_of((self.cfg.machine.hz / 4).max(1)) {
            self.procs.decay_recent_cpu();
        }
        let now = self.q.now();
        // Hardclock cost.
        if let Admit::Run(w) = self
            .cpu
            .admit(now, self.cfg.machine.hardclock, WorkClass::Intr)
        {
            if let Some(cur) = self.sched.current_mut() {
                cur.penalty += w.cost();
            }
        }
        // Softclock: drain deferred work into the fresh budget first
        // (FIFO fairness), then dispatch due callout entries. Admission is
        // threshold-based, so even an oversized item drains.
        while !self.deferred.is_empty() && !self.cpu.soft_budget_left().is_zero() {
            let (cost, work) = self.deferred.pop_front().unwrap();
            self.enqueue_kwork(WorkClass::Soft, cost, work);
        }
        let tick = self.tick;
        let mut due = std::mem::take(&mut self.callout_due);
        self.callout.expire_into(self.tick, &mut due);
        for work in due.drain(..) {
            self.trace.emit(now, || TraceEvent::CalloutFire { tick });
            let cost = self.cfg.machine.callout_dispatch + self.kwork_base_cost(&work);
            self.enqueue_kwork(WorkClass::Soft, cost, work);
        }
        self.callout_due = due;
        self.q.schedule(now + self.cfg.machine.tick(), Event::Tick);
    }

    /// Base CPU cost of applying a kernel work item (excluding transfer
    /// costs, which are charged where they occur).
    pub(crate) fn kwork_base_cost(&self, w: &KWork) -> Dur {
        let m = &self.cfg.machine;
        match w {
            KWork::DiskDone { .. } => m.interrupt,
            KWork::UpdateFlush => m.buf_op * 4,
            KWork::RamIo { .. } => m.buf_op,
            KWork::NetRx { .. } => m.udp_packet,
            KWork::SpliceReadDone { .. } => m.splice_handler,
            KWork::SpliceWrite { .. } => m.splice_handler + m.buf_op,
            KWork::SpliceWriteDone { .. } => m.splice_handler + m.buf_op * 2,
            KWork::SpliceIssueReads { .. } => m.splice_handler,
            KWork::SpliceRetryRead { .. } => m.splice_handler,
            KWork::SpliceStreamPull { .. } => m.splice_handler,
            KWork::SpliceAppend { .. } => m.splice_handler + m.buf_op,
            KWork::SpliceDevWrite { .. } => m.splice_handler,
            KWork::SpliceSockWrite { .. } => m.splice_handler,
            KWork::SpliceSockDrain { .. } => m.splice_handler,
            KWork::SpliceComplete { .. } => m.signal_delivery,
            KWork::ItimerFire { .. } => m.signal_delivery,
            KWork::Sample => m.buf_op,
        }
    }

    fn on_apply(&mut self, work: KWork) {
        match work {
            KWork::DiskDone {
                disk,
                buf,
                data,
                dir,
                error,
            } => {
                if let (IoDir::Read, Some(d)) = (dir, data) {
                    self.cache.data(buf).fill_from(&d);
                }
                self.finish_io(disk, buf, dir, error);
            }
            KWork::RamIo { disk, buf, dir } => {
                // The copy cost was charged at admission; move the bytes.
                let sector = {
                    let (dev, blkno) = self
                        .cache
                        .identity(buf)
                        .expect("RAM I/O buffer lost identity");
                    debug_assert_eq!(self.devmap[&dev], disk);
                    blkno * (self.cfg.block_size as u64 / khw::SECTOR_SIZE as u64)
                };
                let len = self.cache.bcount(buf);
                let DiskUnitKind::Ram(rd) = &mut self.disks[disk].kind else {
                    panic!("RamIo against a SCSI disk");
                };
                let error = match dir {
                    IoDir::Read => {
                        let (data, _, error) = rd.read_checked(sector, len);
                        if let Some(data) = data {
                            self.cache.data(buf).fill_from(&data);
                        }
                        error
                    }
                    IoDir::Write => rd.write_checked(sector, &self.cache.data(buf).to_vec()).1,
                };
                self.stats.add("copy.driver_bytes", len as u64);
                self.finish_io(disk, buf, dir, error);
            }
            KWork::NetRx { dst, dgram } => self.net_rx(dst, dgram),
            KWork::UpdateFlush => {
                // Flush every dirty buffer on every disk (sync(2)'s data
                // half), then re-arm. The flat admission cost covers the
                // scan; per-buffer transfer costs are charged by the
                // write path itself (RamIo kworks / disk interrupts).
                let mut flushed = 0u64;
                for disk in 0..self.disks.len() {
                    let dev = self.disks[disk].dev;
                    for buf in self.cache.dirty_bufs(dev) {
                        if !self.cache.claim_for_flush(buf) {
                            continue;
                        }
                        let mut fx = Vec::new();
                        self.cache.bawrite(buf, &mut fx);
                        self.apply_cache_effects(fx, IoCtx::Kernel);
                        flushed += 1;
                    }
                }
                self.stats.add("update.flushed", flushed);
                if let Some(period) = self.cfg.update_interval {
                    let ticks = (period.as_ns() / self.cfg.machine.tick().as_ns()).max(1);
                    self.callout.schedule(self.tick, ticks, KWork::UpdateFlush);
                    let now = self.q.now();
                    self.trace
                        .emit(now, || TraceEvent::CalloutArm { delay_ticks: ticks });
                }
            }
            KWork::ItimerFire { pid } => {
                self.post_signal(pid, Sig::Alrm);
                // Re-arm if still active.
                let period = self.procs.get(pid).and_then(|p| p.itimer);
                if let Some(period) = period {
                    let ticks = self.dur_to_ticks(period);
                    let id = self
                        .callout
                        .schedule(self.tick, ticks, KWork::ItimerFire { pid });
                    self.itimer_callouts.insert(pid, id);
                    let now = self.q.now();
                    self.trace
                        .emit(now, || TraceEvent::CalloutArm { delay_ticks: ticks });
                }
            }
            KWork::Sample => self.on_sample(),
            splice_work => self.apply_splice_work(splice_work),
        }
    }

    pub(crate) fn dur_to_ticks(&self, d: Dur) -> u64 {
        (d.as_ns() / self.cfg.machine.tick().as_ns()).max(1)
    }

    fn on_timed_wake(&mut self, pid: Pid) {
        let Some(action) = self.timed_actions.remove(&pid) else {
            return;
        };
        match action {
            WakeAction::Deliver(ret) => {
                self.pending_after.insert(pid, AfterCpu::Deliver(ret));
            }
            WakeAction::Resume(cont) => {
                self.conts.insert(pid, cont);
            }
        }
        if matches!(self.procs.must(pid).state, ProcState::Sleeping(_)) {
            self.procs.set_state(pid, ProcState::Runnable);
            self.sched.enqueue(pid);
            self.try_dispatch();
        }
    }

    fn dispatch_event(&mut self, ev: Event) {
        match ev {
            Event::Tick => self.on_tick(),
            Event::DiskIntr { disk, token } => {
                let now = self.q.now();
                self.trace.emit(now, || TraceEvent::DiskIntr {
                    disk: disk as u32,
                    token,
                });
                let DiskUnitKind::Scsi(d) = &mut self.disks[disk].kind else {
                    panic!("DiskIntr for a RAM disk");
                };
                let (done, next) = d.complete(now);
                debug_assert_eq!(done.token, token, "interrupt/active mismatch");
                if let Some(started) = next {
                    // A queued request entered service: its queue wait ends
                    // here (reads feed the stage histogram).
                    if let Some(&(nbuf, ndir)) = self.io_tokens.get(&(disk, started.token)) {
                        if ndir == IoDir::Read {
                            if let Some(&at) = self.io_issued.get(&nbuf) {
                                self.kstat
                                    .stages
                                    .read_queue_wait
                                    .record(now.since(at).as_ns());
                            }
                        }
                    }
                    self.q.schedule(
                        started.finish,
                        Event::DiskIntr {
                            disk,
                            token: started.token,
                        },
                    );
                }
                let (buf, dir) = self
                    .io_tokens
                    .remove(&(disk, done.token))
                    .expect("completion for unknown request");
                // Interrupt service + pseudo-DMA bounce copy, then the
                // bottom half.
                let cost = self.cfg.machine.interrupt + done.host_cpu;
                self.enqueue_kwork(
                    WorkClass::Intr,
                    cost,
                    KWork::DiskDone {
                        disk,
                        buf,
                        data: done.data,
                        dir,
                        error: done.error,
                    },
                );
            }
            Event::Apply(work) => self.on_apply(work),
            Event::UserDone { pid, gen } => self.on_user_done(pid, gen),
            Event::TimedWake { pid } => self.on_timed_wake(pid),
            Event::NetDeliver { dst, dgram } => {
                self.enqueue_kwork(
                    WorkClass::Soft,
                    self.cfg.machine.udp_packet,
                    KWork::NetRx { dst, dgram },
                );
            }
            Event::Dispatch { pid } => {
                self.dispatch_pending = false;
                self.resched = false;
                let now = self.q.now();
                self.trace
                    .emit(now, || TraceEvent::SchedDispatch { pid: pid.0 });
                if self.sched.current().is_some() {
                    // The CPU was re-occupied during the switch window: a
                    // wakeup fired inside a system call's synchronous
                    // execution and raced this dispatch. The process keeps
                    // its turn; the occupying chunk's completion path
                    // re-dispatches.
                    self.stats.bump("sched.dispatch_races");
                    if self
                        .procs
                        .get(pid)
                        .is_some_and(|p| p.state == ProcState::Runnable)
                    {
                        self.sched.enqueue_front(pid);
                    }
                    return;
                }
                // The process may have exited or been made un-runnable in
                // the switch window (it cannot, today, but be safe).
                if self
                    .procs
                    .get(pid)
                    .is_some_and(|p| p.state == ProcState::Runnable)
                {
                    self.procs.set_state(pid, ProcState::Running);
                    self.run_process(pid, self.sched.quantum());
                } else {
                    self.try_dispatch();
                }
            }
        }
    }

    // ----- run loop -------------------------------------------------------------

    /// Runs until `pred` is true (checked between events) or the horizon
    /// passes. Returns the reached time.
    ///
    /// # Panics
    ///
    /// Panics if the event queue drains (the clock keeps it populated, so
    /// this indicates a broken kernel).
    pub fn run_until(
        &mut self,
        horizon: SimTime,
        mut pred: impl FnMut(&Kernel) -> bool,
    ) -> SimTime {
        loop {
            if pred(self) {
                return self.q.now();
            }
            if self.q.peek_time().is_none() {
                panic!("event queue drained at {}", self.q.now());
            }
            if self.q.peek_time().unwrap() > horizon {
                return self.q.now();
            }
            let (_, ev) = self.q.pop().unwrap();
            self.dispatch_event(ev);
            self.maybe_pump();
            self.drain_cache_trace();
        }
    }

    /// Runs until every process has exited (with a safety horizon).
    ///
    /// # Panics
    ///
    /// Panics if processes are still alive at the horizon — a hang.
    pub fn run_to_exit(&mut self, horizon: SimTime) -> SimTime {
        let t = self.run_until(horizon, |k| k.procs.all_exited());
        assert!(
            self.procs.all_exited(),
            "processes still running at horizon {horizon}: {:?}",
            self.procs
                .iter()
                .map(|p| (p.pid, p.state, p.program.name().to_string()))
                .collect::<Vec<_>>()
        );
        t
    }

    /// Runs until `pid` exits (other processes may continue).
    ///
    /// # Panics
    ///
    /// Panics if the process is still alive at the horizon.
    pub fn run_until_exit_of(&mut self, pid: Pid, horizon: SimTime) -> SimTime {
        let t = self.run_until(horizon, |k| k.procs.must(pid).exited());
        assert!(
            self.procs.must(pid).exited(),
            "{pid:?} still running at horizon {horizon}"
        );
        t
    }
}
