//! The kernel's event vocabulary.
//!
//! Two layers exist:
//!
//! * [`Event`] — entries in the global event queue: clock ticks, device
//!   interrupts, user-chunk completions, datagram deliveries, and the
//!   application points of admitted kernel work.
//! * [`KWork`] — units of kernel work. Each is *admitted* to the CPU
//!   engine (charging its cost, possibly deferring it under the softwork
//!   budget) and then *applied* at the end of its execution window via
//!   [`Event::Apply`]. Splice handler chains, RAM-disk strategy calls,
//!   interrupt bottom halves and callout payloads are all `KWork`.

use kbuf::{BufId, IoDir};
use knet::{Datagram, SockId};
use kproc::Pid;

use crate::endpoint::Block;

/// A unit of kernel work (see module docs).
#[derive(Debug)]
pub enum KWork {
    /// A SCSI disk transfer completed: fill/teardown the buffer, run
    /// `biodone` and whatever it triggers.
    DiskDone {
        /// Disk index.
        disk: usize,
        /// Buffer involved.
        buf: BufId,
        /// Data read (for successful reads).
        data: Option<Vec<u8>>,
        /// Direction.
        dir: IoDir,
        /// The transfer failed (`B_ERROR` at `biodone`).
        error: bool,
    },
    /// A RAM-disk strategy call: perform the driver `bcopy` and complete.
    RamIo {
        /// Disk index.
        disk: usize,
        /// Buffer involved.
        buf: BufId,
        /// Direction.
        dir: IoDir,
    },
    /// Protocol receive processing for one datagram.
    NetRx {
        /// Receiving socket.
        dst: SockId,
        /// The datagram.
        dgram: Datagram,
    },
    /// Splice read handler (§5.2.1): a source block arrived; queue the
    /// write side at the head of the callout list.
    SpliceReadDone {
        /// Descriptor id.
        desc: u64,
        /// Logical block within the splice.
        lblk: u64,
        /// The read-side buffer (held).
        buf: BufId,
    },
    /// Splice write side (§5.2.2), dispatched from softclock: allocate the
    /// shared header and start the asynchronous write.
    SpliceWrite {
        /// Descriptor id.
        desc: u64,
        /// Logical block.
        lblk: u64,
        /// The read-side buffer whose data area is shared.
        src_buf: BufId,
    },
    /// Splice write completion handler (§5.2.2): free both buffers, run
    /// flow control (§5.2.3).
    SpliceWriteDone {
        /// Descriptor id.
        desc: u64,
        /// Logical block.
        lblk: u64,
        /// The write-side shared header.
        hdr: BufId,
    },
    /// Flow control: issue more reads for a descriptor.
    SpliceIssueReads {
        /// Descriptor id.
        desc: u64,
    },
    /// Recovery: re-issue one mapped-source block read whose previous
    /// attempt failed with a device error (dispatched from the callout
    /// after the retry backoff).
    SpliceRetryRead {
        /// Descriptor id.
        desc: u64,
        /// Logical block to re-read.
        lblk: u64,
    },
    /// Read side for stream sources: pull one chunk (a datagram or a
    /// framebuffer read) into the engine's pending-read accounting.
    SpliceStreamPull {
        /// Descriptor id.
        desc: u64,
        /// Pull sequence number (the stream's logical block).
        lblk: u64,
    },
    /// Write side for byte streams into a file sink: append one arrived
    /// chunk at its preassigned offset.
    SpliceAppend {
        /// Descriptor id.
        desc: u64,
        /// Logical block (pull sequence number).
        lblk: u64,
        /// Preassigned file offset (idempotent across retries).
        off: u64,
        /// The chunk.
        data: Vec<u8>,
    },
    /// Write side when the sink is a character device: deliver the block
    /// (partially, if the device buffer is smaller; the rest retries via
    /// the callout when space drains).
    SpliceDevWrite {
        /// Descriptor id.
        desc: u64,
        /// Logical block.
        lblk: u64,
        /// The arrived block (held buffer or owned chunk).
        src: Block,
        /// Bytes of this block already delivered.
        off: usize,
    },
    /// Write side when the sink is a socket: packetize a block.
    SpliceSockWrite {
        /// Descriptor id.
        desc: u64,
        /// Logical block.
        lblk: u64,
        /// The arrived block (held buffer or owned chunk).
        src: Block,
    },
    /// Socket-sink retry: the peer link's send buffer was full when the
    /// block arrived; drain the per-host parked-send queue now that the
    /// link should have room again (dispatched from the callout — one
    /// drain in flight per host, however many payloads are parked, so
    /// backpressure never turns into a retry herd).
    SpliceSockDrain {
        /// Destination host whose parked queue to drain.
        host: u32,
    },
    /// Finalisation: deliver `SIGIO` or wake the synchronous caller.
    SpliceComplete {
        /// Descriptor id.
        desc: u64,
    },
    /// Interval timer expiry for a process.
    ItimerFire {
        /// Target process.
        pid: Pid,
    },
    /// The `update` daemon: periodic flush of delayed writes (the classic
    /// 30-second sync).
    UpdateFlush,
    /// The resource-accounting sampler: record one gauge sample
    /// (inflight splice work, disk queue depths, cache occupancy,
    /// per-PID CPU availability) and re-arm. Only scheduled when
    /// sampling is enabled via the builder.
    Sample,
}

/// Entries in the global event queue.
#[derive(Debug)]
pub enum Event {
    /// Hardclock: advance the tick, reset the softwork budget, run
    /// softclock over the callout table.
    Tick,
    /// A SCSI disk raised its completion interrupt for the active request.
    DiskIntr {
        /// Disk index.
        disk: usize,
        /// Request token (cross-checked against the drive's active
        /// request).
        token: u64,
    },
    /// Apply a unit of kernel work whose execution window ended now.
    Apply(KWork),
    /// The current user chunk's nominal completion.
    UserDone {
        /// Process.
        pid: Pid,
        /// Run generation (stale guards).
        gen: u64,
    },
    /// A timed block (metadata I/O) expired.
    TimedWake {
        /// Process.
        pid: Pid,
    },
    /// A datagram arrives at a socket.
    NetDeliver {
        /// Receiving socket.
        dst: SockId,
        /// The datagram.
        dgram: Datagram,
    },
    /// A context switch finished; start running the process.
    Dispatch {
        /// Process taking the CPU.
        pid: Pid,
    },
}
