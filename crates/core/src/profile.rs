//! Resource accounting: tick-accurate CPU/device/cache attribution and
//! the callout-driven gauge sampler.
//!
//! [`Kernel::metrics`](crate::Kernel::metrics) answers *what happened*
//! (event counts, byte volumes, latency digests). This module answers
//! *where the resources went*:
//!
//! * [`Kernel::profile`] — a [`ProfileSnapshot`]: per-PID user/system
//!   CPU straight from the process table's tick accounting, kernel CPU
//!   by admission class, per-device busy time and service-time
//!   distributions, buffer-cache occupancy, and the per-stage splice
//!   latency histograms ([`ksim::StageHists`]).
//! * The [`Sampler`] — opt-in via
//!   [`KernelBuilder::sample`](crate::KernelBuilder::sample) — a
//!   callout-driven gauge recorder: every period it snapshots inflight
//!   splice work, disk queue depths, cache occupancy, and each
//!   process's CPU share over the elapsed interval into a bounded ring
//!   of [`ProfileSample`]s, and mirrors every gauge into the trace's
//!   counter tracks so Chrome/Perfetto render them as time series
//!   alongside the event timeline.
//!
//! Sampling runs through the same callout + kernel-work machinery as
//! everything else (one [`KWork::Sample`] per period, softclock class),
//! so its CPU cost is itself accounted — and, with a fixed period, the
//! sample stream is deterministic: identical runs produce identical
//! `TS_*.json` bytes.

use std::collections::{HashMap, VecDeque};

use ksim::{CounterId, Dur, HistSummary, Json, SimTime, StageHists, Trace, TraceEvent};

use crate::event::KWork;
use crate::kernel::Kernel;

/// Per-process CPU accounting, read from the process table.
#[derive(Clone, Debug)]
pub struct ProcProfile {
    /// Process id.
    pub pid: u32,
    /// Program name (for reports).
    pub name: String,
    /// User-mode CPU consumed.
    pub user_time: Dur,
    /// Kernel-mode CPU consumed on this process's behalf.
    pub sys_time: Dur,
    /// Voluntary context switches.
    pub vcsw: u64,
    /// Involuntary context switches.
    pub icsw: u64,
    /// System calls issued.
    pub syscalls: u64,
    /// True once the process exited.
    pub exited: bool,
}

impl ProcProfile {
    /// Total CPU charged to the process (user + system).
    pub fn cpu_time(&self) -> Dur {
        self.user_time + self.sys_time
    }

    /// JSON form (`*_ns` durations).
    pub fn to_json(&self) -> Json {
        Json::obj()
            .with("pid", Json::Num(self.pid as f64))
            .with("name", Json::Str(self.name.clone()))
            .with("user_ns", Json::Num(self.user_time.as_ns() as f64))
            .with("sys_ns", Json::Num(self.sys_time.as_ns() as f64))
            .with("cpu_ns", Json::Num(self.cpu_time().as_ns() as f64))
            .with("vcsw", Json::Num(self.vcsw as f64))
            .with("icsw", Json::Num(self.icsw as f64))
            .with("syscalls", Json::Num(self.syscalls as f64))
            .with("exited", Json::Bool(self.exited))
    }
}

/// Kernel CPU time by admission class (none of it is attributed to a
/// PID — that asymmetry is the paper's availability argument).
#[derive(Clone, Copy, Debug, Default)]
pub struct CpuClassProfile {
    /// Interrupt-class kernel time.
    pub intr: Dur,
    /// Softclock-class kernel time run within tick budgets.
    pub soft: Dur,
    /// Softclock-class kernel time run in idle cycles.
    pub idle_soft: Dur,
}

impl CpuClassProfile {
    /// All kernel time.
    pub fn total(&self) -> Dur {
        self.intr + self.soft + self.idle_soft
    }

    /// JSON form (`*_ns` durations).
    pub fn to_json(&self) -> Json {
        Json::obj()
            .with("intr_ns", Json::Num(self.intr.as_ns() as f64))
            .with("soft_ns", Json::Num(self.soft.as_ns() as f64))
            .with("idle_soft_ns", Json::Num(self.idle_soft.as_ns() as f64))
            .with("total_ns", Json::Num(self.total().as_ns() as f64))
    }
}

/// Per-device utilization: accumulated busy time and the per-request
/// service-time distribution.
#[derive(Clone, Debug)]
pub struct DeviceProfile {
    /// Disk name (mount point without the slash).
    pub name: String,
    /// Accumulated service time (SCSI: media busy windows; RAM disk:
    /// driver `bcopy` CPU).
    pub busy_time: Dur,
    /// Requests serviced.
    pub requests: u64,
    /// Requests waiting in the device queue right now (always 0 for the
    /// synchronous RAM disk).
    pub queue_depth: u64,
    /// Per-request service-time digest (ns).
    pub service: HistSummary,
}

impl DeviceProfile {
    /// JSON form.
    pub fn to_json(&self) -> Json {
        Json::obj()
            .with("name", Json::Str(self.name.clone()))
            .with("busy_ns", Json::Num(self.busy_time.as_ns() as f64))
            .with("requests", Json::Num(self.requests as f64))
            .with("queue_depth", Json::Num(self.queue_depth as f64))
            .with("service", self.service.to_json())
    }
}

/// Buffer-cache occupancy.
#[derive(Clone, Copy, Debug, Default)]
pub struct CacheOccupancy {
    /// Total buffers in the pool.
    pub pool_size: u64,
    /// Buffers currently holding an identified block.
    pub resident: u64,
    /// Buffers holding a delayed write.
    pub dirty: u64,
}

impl CacheOccupancy {
    /// JSON form.
    pub fn to_json(&self) -> Json {
        Json::obj()
            .with("pool_size", Json::Num(self.pool_size as f64))
            .with("resident", Json::Num(self.resident as f64))
            .with("dirty", Json::Num(self.dirty as f64))
    }
}

/// One coherent view of where the machine's resources went: per-PID
/// CPU, kernel CPU by class, device utilization, cache occupancy, and
/// the per-stage splice latency distributions.
#[derive(Clone, Debug)]
pub struct ProfileSnapshot {
    /// Simulated time the snapshot was taken.
    pub at: SimTime,
    /// Per-process accounting, in pid order.
    pub procs: Vec<ProcProfile>,
    /// Kernel CPU by admission class.
    pub kernel_cpu: CpuClassProfile,
    /// Per-device utilization, in disk-index order.
    pub devices: Vec<DeviceProfile>,
    /// Buffer-cache occupancy.
    pub cache: CacheOccupancy,
    /// Per-stage splice pipeline latency histograms.
    pub stages: StageHists,
}

impl ProfileSnapshot {
    /// The profile entry for `pid`, if the process exists.
    pub fn proc(&self, pid: u32) -> Option<&ProcProfile> {
        self.procs.iter().find(|p| p.pid == pid)
    }

    /// Serializes the snapshot (the stage histograms as digests).
    pub fn to_json(&self) -> Json {
        Json::obj()
            .with("at_ns", Json::Num(self.at.as_ns() as f64))
            .with(
                "procs",
                Json::Arr(self.procs.iter().map(ProcProfile::to_json).collect()),
            )
            .with("kernel_cpu", self.kernel_cpu.to_json())
            .with(
                "devices",
                Json::Arr(self.devices.iter().map(DeviceProfile::to_json).collect()),
            )
            .with("cache", self.cache.to_json())
            .with("stages", self.stages.to_json())
    }
}

/// One gauge observation taken by the sampler.
#[derive(Clone, Debug)]
pub struct ProfileSample {
    /// When the sample was taken.
    pub at: SimTime,
    /// Splice reads outstanding at the devices, summed over descriptors.
    pub inflight_reads: u64,
    /// Splice writes outstanding, summed over descriptors.
    pub inflight_writes: u64,
    /// Device queue depths, in disk-index order.
    pub disk_queues: Vec<u64>,
    /// Cache buffers holding an identified block.
    pub cache_resident: u64,
    /// Cache buffers holding a delayed write.
    pub cache_dirty: u64,
    /// Per-PID CPU share over the interval since the previous sample
    /// (`(pid, fraction)`, in pid order). This is the instantaneous
    /// form of the paper's availability metric: the fraction of the
    /// wall interval the process actually got the CPU.
    pub cpu_share: Vec<(u32, f64)>,
}

impl ProfileSample {
    /// The CPU share recorded for `pid` in this interval.
    pub fn share_of(&self, pid: u32) -> Option<f64> {
        self.cpu_share
            .iter()
            .find(|(p, _)| *p == pid)
            .map(|(_, f)| *f)
    }

    /// JSON form. `cpu_share` becomes an object keyed by decimal pid.
    pub fn to_json(&self) -> Json {
        let mut share = Json::obj();
        for (pid, frac) in &self.cpu_share {
            share.set(&pid.to_string(), Json::Num(*frac));
        }
        Json::obj()
            .with("t_ns", Json::Num(self.at.as_ns() as f64))
            .with("inflight_reads", Json::Num(self.inflight_reads as f64))
            .with("inflight_writes", Json::Num(self.inflight_writes as f64))
            .with(
                "disk_queues",
                Json::Arr(
                    self.disk_queues
                        .iter()
                        .map(|q| Json::Num(*q as f64))
                        .collect(),
                ),
            )
            .with("cache_resident", Json::Num(self.cache_resident as f64))
            .with("cache_dirty", Json::Num(self.cache_dirty as f64))
            .with("cpu_share", share)
    }
}

/// Interned counter-track handles, registered on the first sample (so a
/// run that never samples registers nothing and trace bytes are
/// untouched). Steady-state recording is then allocation-free: no
/// `format!` per gauge per sample, no name scans.
#[derive(Debug)]
pub(crate) struct SamplerSeries {
    inflight_reads: CounterId,
    inflight_writes: CounterId,
    /// One series per disk, in disk-index order.
    disk_queues: Vec<CounterId>,
    cache_resident: CounterId,
    cache_dirty: CounterId,
    /// Per-PID `pid{pid}.cpu_share` series, interned when the pid is
    /// first sampled (pid-order iteration keeps registration, and thus
    /// Chrome track numbering, deterministic).
    pid_shares: HashMap<u32, CounterId>,
}

impl SamplerSeries {
    fn register(trace: &mut Trace, ndisks: usize) -> Self {
        SamplerSeries {
            inflight_reads: trace.counter_id("splice.inflight_reads"),
            inflight_writes: trace.counter_id("splice.inflight_writes"),
            disk_queues: (0..ndisks)
                .map(|i| trace.counter_id(&format!("disk{i}.queue")))
                .collect(),
            cache_resident: trace.counter_id("cache.resident"),
            cache_dirty: trace.counter_id("cache.dirty"),
            pid_shares: HashMap::new(),
        }
    }
}

/// The callout-driven gauge recorder (see the module docs). Owned by
/// the kernel when sampling is enabled.
#[derive(Debug)]
pub(crate) struct Sampler {
    /// Sampling period.
    pub(crate) period: Dur,
    /// Ring capacity; the oldest sample is dropped beyond it.
    pub(crate) capacity: usize,
    /// The bounded sample ring.
    pub(crate) samples: VecDeque<ProfileSample>,
    /// Cumulative CPU per pid at the previous sample (for deltas).
    pub(crate) last_cpu: HashMap<u32, Dur>,
    /// When the previous sample was taken.
    pub(crate) last_at: SimTime,
    /// Samples dropped at capacity.
    pub(crate) dropped: u64,
    /// Interned counter handles, populated on the first firing.
    pub(crate) series: Option<SamplerSeries>,
}

impl Kernel {
    /// Installs the gauge sampler and arms its callout (the builder's
    /// opt-in path; call after any trace installation).
    pub(crate) fn install_sampler(&mut self, period: Dur, capacity: usize) {
        assert!(capacity > 0, "sampler capacity must be positive");
        assert!(!period.is_zero(), "sampler period must be positive");
        self.trace.set_counter_capacity(capacity);
        self.sampler = Some(Sampler {
            period,
            capacity,
            samples: VecDeque::new(),
            last_cpu: HashMap::new(),
            last_at: self.q.now(),
            dropped: 0,
            series: None,
        });
        let ticks = self.dur_to_ticks(period);
        self.callout.schedule(self.tick, ticks, KWork::Sample);
        let now = self.q.now();
        self.trace
            .emit(now, || TraceEvent::CalloutArm { delay_ticks: ticks });
    }

    /// One sampler firing: record every gauge, mirror them into the
    /// trace's counter tracks, and re-arm.
    pub(crate) fn on_sample(&mut self) {
        let Some(mut s) = self.sampler.take() else {
            return; // sampling was never enabled; stale work
        };
        let now = self.q.now();
        let (mut inflight_reads, mut inflight_writes) = (0u64, 0u64);
        for d in self.splices.values() {
            inflight_reads += d.pending_reads as u64;
            inflight_writes += d.pending_writes as u64;
        }
        let disk_queues: Vec<u64> = self.disks.iter().map(|d| d.kind.queue_depth()).collect();
        let cache_resident = self.cache.resident_count() as u64;
        let cache_dirty = self.cache.dirty_count() as u64;
        let wall = now.since(s.last_at);
        // Process-table iteration is pid-ordered, so the share vector —
        // and everything serialized from it — is deterministic.
        let mut cpu_share = Vec::new();
        for p in self.procs.iter() {
            let cpu = p.acct.cpu_time();
            let prev = s.last_cpu.insert(p.pid.0, cpu).unwrap_or(Dur::ZERO);
            let used = cpu.saturating_sub(prev);
            // Accounting posts a quantum's CPU when it completes, so a
            // quantum straddling the sample boundary lands its whole
            // charge in one interval; clamp to the uniprocessor bound
            // (the long-run average is unaffected).
            let frac = if wall.is_zero() {
                0.0
            } else {
                (used.as_ns() as f64 / wall.as_ns() as f64).min(1.0)
            };
            cpu_share.push((p.pid.0, frac));
        }
        s.last_at = now;

        // Intern the series handles on the first firing (matching the
        // creation order the by-name path used), then record through
        // them: the steady-state sample costs no allocation and no name
        // scans. Only a newly appeared pid interns a new series.
        let series = s
            .series
            .get_or_insert_with(|| SamplerSeries::register(&mut self.trace, disk_queues.len()));
        self.trace
            .record_counter_id(now, series.inflight_reads, inflight_reads as f64);
        self.trace
            .record_counter_id(now, series.inflight_writes, inflight_writes as f64);
        for (i, q) in disk_queues.iter().enumerate() {
            self.trace
                .record_counter_id(now, series.disk_queues[i], *q as f64);
        }
        self.trace
            .record_counter_id(now, series.cache_resident, cache_resident as f64);
        self.trace
            .record_counter_id(now, series.cache_dirty, cache_dirty as f64);
        for (pid, frac) in &cpu_share {
            let id = match series.pid_shares.get(pid) {
                Some(&id) => id,
                None => {
                    let id = self.trace.counter_id(&format!("pid{pid}.cpu_share"));
                    series.pid_shares.insert(*pid, id);
                    id
                }
            };
            self.trace.record_counter_id(now, id, *frac);
        }

        if s.samples.len() == s.capacity {
            s.samples.pop_front();
            s.dropped += 1;
        }
        s.samples.push_back(ProfileSample {
            at: now,
            inflight_reads,
            inflight_writes,
            disk_queues,
            cache_resident,
            cache_dirty,
            cpu_share,
        });

        let ticks = self.dur_to_ticks(s.period);
        self.callout.schedule(self.tick, ticks, KWork::Sample);
        self.trace
            .emit(now, || TraceEvent::CalloutArm { delay_ticks: ticks });
        self.sampler = Some(s);
    }

    /// Takes a resource-accounting snapshot (see [`ProfileSnapshot`]).
    pub fn profile(&self) -> ProfileSnapshot {
        let (intr, soft, idle_soft) = self.cpu.kernel_time_by_class();
        ProfileSnapshot {
            at: self.now(),
            procs: self
                .procs
                .iter()
                .map(|p| ProcProfile {
                    pid: p.pid.0,
                    name: p.program.name().to_string(),
                    user_time: p.acct.user_time,
                    sys_time: p.acct.sys_time,
                    vcsw: p.acct.vcsw,
                    icsw: p.acct.icsw,
                    syscalls: p.acct.syscalls,
                    exited: p.exited(),
                })
                .collect(),
            kernel_cpu: CpuClassProfile {
                intr,
                soft,
                idle_soft,
            },
            devices: self
                .disks
                .iter()
                .map(|d| DeviceProfile {
                    name: d.name.clone(),
                    busy_time: d.kind.busy_time(),
                    requests: d.kind.requests(),
                    queue_depth: d.kind.queue_depth(),
                    service: HistSummary::from(d.kind.service_hist()),
                })
                .collect(),
            cache: CacheOccupancy {
                pool_size: self.cache.pool_size() as u64,
                resident: self.cache.resident_count() as u64,
                dirty: self.cache.dirty_count() as u64,
            },
            stages: self.kstat.stages.clone(),
        }
    }

    /// The recorded gauge samples, oldest first (empty when sampling is
    /// disabled).
    pub fn samples(&self) -> impl Iterator<Item = &ProfileSample> {
        self.sampler.iter().flat_map(|s| s.samples.iter())
    }

    /// Serializes the sampler's time series as the `TS_*.json` document:
    /// workload label, period, drop count, and the sample array.
    pub fn timeseries_json(&self, workload: &str) -> Json {
        let (period, dropped, samples) = match &self.sampler {
            Some(s) => (
                s.period,
                s.dropped,
                s.samples.iter().map(ProfileSample::to_json).collect(),
            ),
            None => (Dur::ZERO, 0, Vec::new()),
        };
        Json::obj()
            .with("workload", Json::Str(workload.into()))
            .with("period_ns", Json::Num(period.as_ns() as f64))
            .with("dropped", Json::Num(dropped as f64))
            .with("samples", Json::Arr(samples))
    }
}
