//! The splice engine (§5 of the paper).
//!
//! A `splice(src_fd, dst_fd, size)` resolves both descriptors into
//! [endpoints](crate::endpoint) and builds a **splice descriptor**: a
//! self-contained record of everything the transfer needs — the source
//! read plan (a §5.2 physical block table for files, a pull-chunk size
//! for streams), destination block tables obtained with the allocating
//! `bmap` (§5.2), watermark counters (§5.2.3), and completion routing
//! (`FASYNC`/`SIGIO` or a sleeping synchronous caller). "Placing all
//! necessary information in this descriptor allows I/O to proceed without
//! requiring the calling process context to be available."
//!
//! **One engine loop serves every src×dst pair.** The data path runs
//! entirely in kernel completion context:
//!
//! * **Read side** (§5.2.1) — block sources issue `bread_call`s whose
//!   `b_iodone` handlers ([`crate::event::KWork::SpliceReadDone`]) fire at
//!   the completion interrupt; stream sources issue in-kernel pulls
//!   ([`crate::event::KWork::SpliceStreamPull`]). Both occupy
//!   pending-read slots.
//! * **Write side** (§5.2.2) — every arriving [`Block`] occupies a
//!   pending-write slot and is dispatched to its sink backend: the
//!   shared-header `bawrite` for aligned file sinks (no cache-to-cache
//!   copy), the append path for byte streams into files, paced delivery
//!   for character devices, datagram sends for sockets.
//! * **Flow control** (§5.2.3) — the common completion tail frees the
//!   block and, "if the number of pending reads and the number of
//!   pending writes drop below pre-specified watermarks (currently 3 and
//!   5 …), will issue up to five additional reads" — for *all* sources,
//!   so a socket-to-file spool stops pulling (datagrams queue in the
//!   socket buffer) when the disk side backs up.
//!
//! Because the accounting is shared, the kstat [`ksim::SpliceSpan`]
//! lifecycle, gauge samples, and latency digests describe every splice,
//! including the stream-sourced ones that historically bypassed them.

use std::collections::HashMap;

use kbuf::BufId;
use khw::CopyKind;
use kproc::{Chan, ChanSpace, Errno, Pid, SpliceLen, SyscallRet, WorkClass};
use ksim::{Dur, TraceEvent};

use crate::endpoint::{Block, DstEndpoint, ReadPlan, SrcEndpoint};
use crate::event::KWork;
use crate::kernel::{IoCtx, Kernel};
use crate::objects::{CharDev, FileId};
use crate::splice_ring::RingRoute;
use crate::syscalls::{Cont, SyscallOutcome};

/// Pull granularity for stream sources (one datagram or framebuffer
/// chunk per pending-read slot).
pub(crate) const STREAM_CHUNK: usize = 8192;

/// Default per-block retry budget for transient device errors. The
/// first retry waits one tick; each further attempt doubles the backoff
/// (1, 2, 4, 8, 16 ticks). A block that still fails after this many
/// attempts aborts the whole splice with `EIO`. Ring submissions can
/// override the budget per request ([`kproc::SpliceReq::retries`]).
pub const MAX_SPLICE_RETRIES: u32 = kproc::SpliceReq::DEFAULT_RETRIES;

pub use kproc::SpliceOutcome;

/// Typed completion status of a splice descriptor, replacing the old
/// `Option<SpliceOutcome>` that conflated "still running" with "never
/// heard of it".
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum OutcomeStatus {
    /// The splice is still in flight: no outcome yet.
    Pending,
    /// The splice finished (successfully or by abort) with this outcome.
    Done(SpliceOutcome),
    /// No such descriptor: never created, or created before a kernel
    /// restart. Distinct from [`OutcomeStatus::Pending`] so pollers
    /// cannot spin on an id that will never complete.
    Unknown,
}

impl OutcomeStatus {
    /// The outcome, if the splice has finished.
    pub fn done(self) -> Option<SpliceOutcome> {
        match self {
            OutcomeStatus::Done(o) => Some(o),
            _ => None,
        }
    }
}

/// The §5.2.3 rate-based flow-control parameters.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FlowControl {
    /// Issue more reads only when pending reads drop below this.
    pub lo_reads: u32,
    /// … and pending writes below this.
    pub lo_writes: u32,
    /// Reads issued per refill ("up to five additional reads").
    pub batch: u32,
}

impl Default for FlowControl {
    fn default() -> Self {
        FlowControl {
            lo_reads: 3,
            lo_writes: 5,
            batch: 5,
        }
    }
}

/// One active splice, keyed by its descriptor id in `Kernel::splices`.
pub(crate) struct SpliceDesc {
    pub src: SrcEndpoint,
    pub dst: DstEndpoint,
    /// Bytes this splice will move.
    pub total: u64,
    pub bytes_done: u64,
    /// How the source side is driven (block table or stream pulls).
    pub plan: ReadPlan,
    /// Physical destination block per logical splice block (block sink).
    pub dst_map: Vec<u64>,
    /// Next block to read (mapped) or next pull sequence number (stream).
    pub next_read: usize,
    pub pending_reads: u32,
    pub pending_writes: u32,
    pub blocks_done: usize,
    /// Bytes pulled from a stream source so far.
    pub stream_taken: u64,
    /// Read-side buffers awaiting their write, by logical block.
    pub src_bufs: HashMap<u64, BufId>,
    /// Issue instants of in-flight blocks (latency accounting).
    pub issued_at: HashMap<u64, ksim::SimTime>,
    /// When each block's read side finished (stage accounting: the
    /// read-done → write-issue gap).
    pub read_done_at: HashMap<u64, ksim::SimTime>,
    /// When each block's write was (last) issued to its sink backend
    /// (stage accounting: write service time).
    pub write_issued_at: HashMap<u64, ksim::SimTime>,
    /// Append cursor for a byte-stream file sink.
    pub dst_off: u64,
    /// Device-error retry attempts per logical block.
    pub retries: HashMap<u64, u32>,
    /// Per-request retry budget (see [`MAX_SPLICE_RETRIES`]).
    pub retry_limit: u32,
    /// Set when the splice is aborting: no new work is issued and
    /// in-flight blocks drain without counting.
    pub error: Option<Errno>,
    pub done: bool,
}

impl SpliceDesc {
    /// Bytes of block `lblk` belonging to a mapped transfer.
    pub(crate) fn mapped_len(&self, lblk: u64) -> usize {
        match &self.plan {
            ReadPlan::Mapped { src_lens, .. } => src_lens[lblk as usize],
            ReadPlan::Stream { .. } => panic!("mapped_len on a stream splice"),
        }
    }

    /// Offset of the transfer within its first block (mapped plans).
    pub(crate) fn first_boff(&self) -> usize {
        match &self.plan {
            ReadPlan::Mapped { first_boff, .. } => *first_boff,
            ReadPlan::Stream { .. } => 0,
        }
    }
}

/// What [`Kernel::splice_begin`] did with a request: admitted it as an
/// in-flight descriptor, finished it on the spot (zero-length), or
/// refused it. CPU charges *exclude* the syscall crossing — the entry
/// point (one `splice(2)` trap or one amortized ring-submit crossing)
/// adds its own.
pub(crate) enum SpliceBegin {
    /// The splice is in flight; `desc` identifies it.
    Started { desc: u64, cpu: Dur },
    /// Nothing to move (zero-length transfer): done immediately.
    Empty { cpu: Dur },
    /// Refused with this errno (already counted through the funnel).
    Rejected(Errno),
}

impl Kernel {
    // ----- the unified splice entry point ------------------------------------

    /// Builds and launches a splice descriptor from an already-resolved
    /// request. **Every** entry path lands here — the synchronous
    /// `splice(2)` call, the `FASYNC`/`SIGIO` descriptor path, and ring
    /// submissions — differing only in the completion [`RingRoute`] they
    /// pass. Rejections are counted through
    /// [`Kernel::splice_reject_note`]; the caller maps them onto its own
    /// failure surface (errno return or error CQE).
    pub(crate) fn splice_begin(
        &mut self,
        sfid: FileId,
        dfid: FileId,
        len: SpliceLen,
        retry_limit: u32,
        route: RingRoute,
    ) -> SpliceBegin {
        let m = self.cfg.machine.clone();
        let sof = self.files.get(sfid).expect("resolved fid");
        let dof = self.files.get(dfid).expect("resolved fid");
        let (sobj, dobj) = (sof.obj, dof.obj);

        // An object participates only through a descriptor opened for
        // that direction: read on the source, write on the sink.
        if !sof.readable || !dof.writable {
            return SpliceBegin::Rejected(self.splice_reject_note(Errno::Ebadf));
        }
        let src = match self.resolve_src(sobj) {
            Ok(s) => s,
            Err(e) => return SpliceBegin::Rejected(self.splice_reject_note(e)),
        };
        let dst = match self.resolve_dst(dobj) {
            Ok(d) => d,
            Err(e) => return SpliceBegin::Rejected(self.splice_reject_note(e)),
        };

        // Resolve the transfer size and build the source read plan.
        let (total, plan, dst_map, dst_off, mut cpu) = match src {
            SrcEndpoint::File { disk, ino } => {
                // §5.2: "the size of the source file is determined from
                // information present in the gnode."
                let offset = self.files.get(sfid).unwrap().offset;
                let avail = self.disks[disk].fs.size(ino).saturating_sub(offset);
                let total = match len {
                    SpliceLen::Bytes(n) => n.min(avail),
                    SpliceLen::Eof => avail,
                };
                if total == 0 {
                    return SpliceBegin::Empty { cpu: Dur::ZERO };
                }
                let plan = match self.prepare_file_source(disk, ino, offset, total) {
                    Ok(p) => p,
                    Err(e) => return SpliceBegin::Rejected(self.splice_reject_note(e)),
                };
                let nblocks = match &plan {
                    ReadPlan::Mapped { src_map, .. } => src_map.len(),
                    ReadPlan::Stream { .. } => unreachable!(),
                };
                let mut dst_map = Vec::new();
                if let DstEndpoint::File {
                    disk: ddisk,
                    ino: dino,
                } = dst
                {
                    // Whole-block sharing needs aligned endpoints.
                    let bs = self.cfg.block_size as u64;
                    let dst_off = self.files.get(dfid).unwrap().offset;
                    if plan_first_boff(&plan) != 0 || !dst_off.is_multiple_of(bs) {
                        return SpliceBegin::Rejected(self.splice_reject_note(Errno::Einval));
                    }
                    dst_map = match self.prepare_file_sink(ddisk, dino, dst_off, nblocks, total) {
                        Ok(map) => map,
                        Err(e) => return SpliceBegin::Rejected(self.splice_reject_note(e)),
                    };
                    self.files.get_mut(dfid).unwrap().offset += total;
                }
                // Advance the source descriptor past the spliced range.
                self.files.get_mut(sfid).unwrap().offset += total;
                // Descriptor build cost: the bmap walks plus allocation.
                let cpu = m.buf_op + Dur::from_us(2) * (nblocks as u64 * 2);
                (total, plan, dst_map, 0u64, cpu)
            }
            SrcEndpoint::Fb { .. } | SrcEndpoint::Sock { .. } => {
                let SpliceLen::Bytes(total) = len else {
                    // A stream source has no EOF to reach.
                    return SpliceBegin::Rejected(self.splice_reject_note(Errno::Einval));
                };
                if total == 0 {
                    return SpliceBegin::Empty { cpu: Dur::ZERO };
                }
                // Byte-stream file sinks append from the current size.
                let dst_off = match dst {
                    DstEndpoint::File { disk, ino } => self.disks[disk].fs.size(ino),
                    _ => 0,
                };
                let plan = ReadPlan::Stream {
                    chunk: STREAM_CHUNK,
                };
                (total, plan, Vec::new(), dst_off, Dur::ZERO)
            }
        };

        let id = self.next_splice;
        self.next_splice += 1;
        let desc = SpliceDesc {
            src,
            dst,
            total,
            bytes_done: 0,
            plan,
            dst_map,
            next_read: 0,
            pending_reads: 0,
            pending_writes: 0,
            blocks_done: 0,
            stream_taken: 0,
            src_bufs: HashMap::new(),
            issued_at: HashMap::new(),
            read_done_at: HashMap::new(),
            write_issued_at: HashMap::new(),
            dst_off,
            retries: HashMap::new(),
            retry_limit,
            error: None,
            done: false,
        };
        self.splices.insert(id, desc);
        if let SrcEndpoint::Sock { sock } = src {
            self.rings.bind_sock(sock, id);
        }
        self.rings.register(
            id,
            RingRoute {
                user_data: Some(route.user_data.unwrap_or(id)),
                ..route
            },
        );
        self.stats.bump("splice.started");
        let now = self.q.now();
        self.kstat.spans.start(id, now);
        self.trace.emit(now, || TraceEvent::SpliceStart {
            desc: id,
            bytes: total,
        });

        // Initial reads/pulls are issued in the caller's context.
        cpu += self.splice_issue_reads(id, IoCtx::Process);
        SpliceBegin::Started { desc: id, cpu }
    }

    /// The legacy `splice(2)` entry point, re-expressed on the ring path:
    /// a depth-1 submit on the process's implicit legacy ring. Without
    /// `FASYNC` the caller blocks on the ring channel until its entry
    /// completes; with `FASYNC` the call returns immediately and
    /// completion is announced with `SIGIO` (no CQE is queued — the
    /// outcome is latched in [`Kernel::splice_outcome`]).
    pub(crate) fn sys_splice(
        &mut self,
        pid: Pid,
        sfid: FileId,
        dfid: FileId,
        len: SpliceLen,
        retry_limit: u32,
    ) -> SyscallOutcome {
        let m = self.cfg.machine.clone();
        let fasync = {
            let sof = self.files.get(sfid).expect("resolved fid");
            let dof = self.files.get(dfid).expect("resolved fid");
            sof.fasync || dof.fasync
        };
        let ring = self.rings.legacy_ring_for(pid);
        let route = RingRoute {
            ring,
            user_data: None,
            queue_cqe: !fasync,
            sigio: fasync,
        };
        match self.splice_begin(sfid, dfid, len, retry_limit, route) {
            SpliceBegin::Rejected(e) => SyscallOutcome::Done {
                cpu: m.syscall,
                ret: SyscallRet::Err(e),
            },
            SpliceBegin::Empty { cpu } => SyscallOutcome::Done {
                cpu: m.syscall + cpu,
                ret: SyscallRet::Val(0),
            },
            SpliceBegin::Started { desc, cpu } => {
                if fasync {
                    SyscallOutcome::Done {
                        cpu: m.syscall + cpu,
                        ret: SyscallRet::Val(0),
                    }
                } else {
                    self.conts.insert(pid, Cont::SpliceSync { ring, desc });
                    SyscallOutcome::Block {
                        cpu: m.syscall + cpu,
                        chan: Chan::new(ChanSpace::Ring, ring),
                    }
                }
            }
        }
    }

    /// Counts and traces a splice rejection — the single funnel every
    /// refused request passes through, whether it surfaces as an errno
    /// return (`splice(2)`, ring syscalls) or an error CQE (per-entry
    /// ring submission failures). Returns the errno for convenience.
    pub(crate) fn splice_reject_note(&mut self, e: Errno) -> Errno {
        self.stats.bump("splice.rejected");
        let now = self.q.now();
        self.trace.emit(now, || TraceEvent::SpliceReject {
            errno: errno_name(e),
        });
        e
    }

    /// Rejection as a syscall outcome: the funnel plus the errno return
    /// charged at one crossing.
    pub(crate) fn splice_reject(&mut self, e: Errno) -> SyscallOutcome {
        let e = self.splice_reject_note(e);
        SyscallOutcome::Done {
            cpu: self.cfg.machine.syscall,
            ret: SyscallRet::Err(e),
        }
    }

    /// A synchronous splice caller woke up: deliver the byte count if the
    /// transfer finished, or go back to sleep. An aborted splice reports
    /// its typed errno — never a success value — and leaves the exact
    /// partial byte count in [`Kernel::splice_outcome`].
    pub(crate) fn resume_splice_sync(&mut self, pid: Pid, ring: u64, desc: u64) -> SyscallOutcome {
        match self.splice_outcome(desc) {
            OutcomeStatus::Done(o) => {
                // Drop the latched CQE: the blocking caller *is* the
                // reaper for its depth-1 entry.
                self.rings.remove_cqe(ring, desc);
                let ret = match o.error {
                    Some(e) => SyscallRet::Err(e),
                    None => SyscallRet::Val(o.bytes_moved as i64),
                };
                SyscallOutcome::Done {
                    cpu: self.cfg.machine.buf_op,
                    ret,
                }
            }
            OutcomeStatus::Pending => {
                self.conts.insert(pid, Cont::SpliceSync { ring, desc });
                SyscallOutcome::Block {
                    cpu: Dur::ZERO,
                    chan: Chan::new(ChanSpace::Ring, ring),
                }
            }
            // The descriptor vanished without latching an outcome (it
            // cannot under normal operation): report zero, don't hang.
            OutcomeStatus::Unknown => SyscallOutcome::Done {
                cpu: self.cfg.machine.buf_op,
                ret: SyscallRet::Val(0),
            },
        }
    }

    // ----- read issuing (§5.2.1 + §5.2.3) --------------------------------------

    /// Runs a span-note closure for descriptor `desc`, handing it the
    /// current time and the descriptor's pending-work gauges. A no-op for
    /// descriptors that are already gone (teardown races).
    pub(crate) fn span_note(
        &mut self,
        desc: u64,
        f: impl FnOnce(&mut ksim::SpliceSpan, ksim::SimTime, u32, u32),
    ) {
        let Some(d) = self.splices.get(&desc) else {
            return;
        };
        let (pr, pw) = (d.pending_reads, d.pending_writes);
        let now = self.q.now();
        if let Some(span) = self.kstat.spans.get_mut(desc) {
            f(span, now, pr, pw);
        }
    }

    /// Issues source work — block reads or stream pulls — up to the batch
    /// limit. Returns CPU cost incurred in the caller's context (setup
    /// path).
    pub(crate) fn splice_issue_reads(&mut self, id: u64, ctx: IoCtx) -> Dur {
        let m = self.cfg.machine.clone();
        let batch = self.cfg.flow.batch;
        let mut cpu = Dur::ZERO;
        loop {
            let Some(d) = self.splices.get(&id) else {
                return cpu;
            };
            if d.done || d.error.is_some() || d.pending_reads >= batch {
                return cpu;
            }
            match &d.plan {
                ReadPlan::Mapped { src_map, .. } => {
                    if d.next_read >= src_map.len() {
                        return cpu;
                    }
                    let lblk = d.next_read as u64;
                    let pblk = src_map[d.next_read];
                    let SrcEndpoint::File { disk, .. } = d.src else {
                        unreachable!("mapped plans come from file sources")
                    };
                    let (c, keep_going) = self.file_issue_read(id, lblk, pblk, disk, ctx, false);
                    cpu += c;
                    if !keep_going {
                        return cpu;
                    }
                }
                ReadPlan::Stream { chunk } => {
                    let chunk = *chunk;
                    // Claim bound: each outstanding pull claims up to one
                    // chunk; stop once claims cover the remaining bytes.
                    let claimed = d.stream_taken + d.pending_reads as u64 * chunk as u64;
                    if claimed >= d.total {
                        return cpu;
                    }
                    let cost = match d.src {
                        SrcEndpoint::Sock { sock } => {
                            // At most one pull per queued datagram; the
                            // next delivery re-arms via net_rx.
                            if d.pending_reads as usize >= self.net.rcv_depth(sock) {
                                return cpu;
                            }
                            m.splice_handler + m.udp_packet
                        }
                        SrcEndpoint::Fb { .. } => {
                            m.splice_handler + m.copy_cost(CopyKind::Driver, chunk)
                        }
                        SrcEndpoint::File { .. } => {
                            unreachable!("stream plans come from fb/socket sources")
                        }
                    };
                    let now = self.q.now();
                    let d = self.splices.get_mut(&id).unwrap();
                    let lblk = d.next_read as u64;
                    d.next_read += 1;
                    d.pending_reads += 1;
                    d.issued_at.insert(lblk, now);
                    self.stats.bump("splice.reads_issued");
                    self.trace
                        .emit(now, || TraceEvent::SpliceReadIssue { desc: id, lblk });
                    self.span_note(id, |s, now, pr, pw| s.note_read_issued(now, pr, pw));
                    self.enqueue_kwork(
                        WorkClass::Soft,
                        cost,
                        KWork::SpliceStreamPull { desc: id, lblk },
                    );
                }
            }
        }
    }

    // ----- kernel-work handlers ---------------------------------------------------

    pub(crate) fn apply_splice_work(&mut self, work: KWork) {
        match work {
            KWork::SpliceReadDone { desc, lblk, buf } => {
                self.splice_block_arrived(desc, lblk, Block::Buf(buf))
            }
            KWork::SpliceStreamPull { desc, lblk } => self.splice_stream_pull(desc, lblk),
            KWork::SpliceWrite {
                desc,
                lblk,
                src_buf,
            } => self.splice_write(desc, lblk, src_buf),
            KWork::SpliceWriteDone { desc, lblk, hdr } => self.splice_write_done(desc, lblk, hdr),
            KWork::SpliceAppend {
                desc,
                lblk,
                off,
                data,
            } => self.splice_append(desc, lblk, off, data),
            KWork::SpliceIssueReads { desc } => {
                self.splice_issue_reads(desc, IoCtx::Kernel);
            }
            KWork::SpliceRetryRead { desc, lblk } => self.splice_retry_read(desc, lblk),
            KWork::SpliceDevWrite {
                desc,
                lblk,
                src,
                off,
            } => self.splice_dev_write(desc, lblk, src, off),
            KWork::SpliceSockWrite { desc, lblk, src } => self.splice_sock_write(desc, lblk, src),
            KWork::SpliceSockDrain { host } => self.splice_sock_drain(host),
            KWork::SpliceComplete { desc } => self.complete_splice(desc),
            other => panic!("not splice work: {other:?}"),
        }
    }

    pub(crate) fn release_buf(&mut self, buf: BufId) {
        let mut fx = Vec::new();
        self.cache.brelse(buf, &mut fx);
        let sync = self.apply_cache_effects(fx, IoCtx::Kernel);
        debug_assert!(sync.is_zero());
    }

    /// Applies one stream pull: take the next chunk from the source and
    /// hand it to the engine as an arrived block.
    fn splice_stream_pull(&mut self, desc: u64, lblk: u64) {
        let now = self.q.now();
        let Some(d) = self.splices.get(&desc) else {
            return;
        };
        let src = d.src;
        let remaining = d.total.saturating_sub(d.stream_taken);
        let want = match &d.plan {
            ReadPlan::Stream { chunk } => (*chunk as u64).min(remaining) as usize,
            ReadPlan::Mapped { .. } => panic!("stream pull on a mapped splice"),
        };
        if d.done || d.error.is_some() || want == 0 {
            // The source closed, the splice is aborting, or the target
            // was reached while this pull was queued; release the slot.
            let d = self.splices.get_mut(&desc).unwrap();
            d.pending_reads = d.pending_reads.saturating_sub(1);
            d.issued_at.remove(&lblk);
            self.maybe_finish_abort(desc);
            return;
        }
        let payload = match src {
            SrcEndpoint::Sock { sock } => self.sock_pull(sock, want),
            SrcEndpoint::Fb { cdev } => Some(self.fb_pull(cdev, now, want)),
            SrcEndpoint::File { .. } => unreachable!("stream pull from a file"),
        };
        let Some(payload) = payload else {
            // Socket drained between issue and apply; the next delivery
            // re-arms via net_rx.
            let d = self.splices.get_mut(&desc).unwrap();
            d.pending_reads = d.pending_reads.saturating_sub(1);
            d.issued_at.remove(&lblk);
            self.maybe_finish_abort(desc);
            return;
        };
        let d = self.splices.get_mut(&desc).unwrap();
        d.stream_taken += payload.len() as u64;
        self.splice_block_arrived(desc, lblk, Block::Bytes(payload));
    }

    /// §5.2.1's read handler, generalized: a source block arrived (from a
    /// device read or a stream pull). Move it from the pending-read to
    /// the pending-write column and dispatch it to the sink backend —
    /// aligned file sinks at the head of the callout list, everything
    /// else as kernel soft work.
    fn splice_block_arrived(&mut self, desc: u64, lblk: u64, block: Block) {
        let m = self.cfg.machine.clone();
        let now = self.q.now();
        // A read that completed with B_ERROR never joins the write
        // column: release the buffer (brelse discards errored buffers,
        // so a retry re-misses and re-reads the device) and run the
        // retry/abort policy.
        if let Block::Buf(buf) = &block {
            let buf = *buf;
            if self.cache.flags(buf).contains(kbuf::BufFlags::ERROR) {
                self.release_buf(buf);
                if self.splices.contains_key(&desc) {
                    let d = self.splices.get_mut(&desc).unwrap();
                    d.pending_reads -= 1;
                    d.issued_at.remove(&lblk);
                    self.splice_read_failed(desc, lblk);
                }
                return;
            }
        }
        let Some(d) = self.splices.get_mut(&desc) else {
            if let Block::Buf(buf) = block {
                self.release_buf(buf);
            }
            return;
        };
        // Abort drain: the slot is dropped and the block discarded
        // without dispatching its write.
        if d.error.is_some() {
            d.pending_reads -= 1;
            d.issued_at.remove(&lblk);
            if let Block::Buf(buf) = block {
                self.release_buf(buf);
            }
            self.maybe_finish_abort(desc);
            return;
        }
        d.pending_reads -= 1;
        // Stage accounting: the read side of this block is done. The
        // issue instant stays in `issued_at` for the end-to-end digest.
        if let Some(&at) = d.issued_at.get(&lblk) {
            self.kstat.stages.read_service.record(now.since(at).as_ns());
        }
        self.trace
            .emit(now, || TraceEvent::SpliceReadDone { desc, lblk });
        let d = self.splices.get_mut(&desc).unwrap();
        d.read_done_at.insert(lblk, now);
        d.pending_writes += 1;
        if let Block::Buf(buf) = &block {
            d.src_bufs.insert(lblk, *buf);
        }
        let len = match &block {
            Block::Bytes(b) => b.len(),
            Block::Buf(_) => d.mapped_len(lblk),
        };
        let dst = d.dst;
        match (dst, block) {
            (DstEndpoint::File { .. }, Block::Buf(buf)) => {
                // §5.2.1: "schedules a write by placing a reference to
                // the write handler at the head of the system callout
                // list."
                self.callout.schedule_head(
                    self.tick,
                    KWork::SpliceWrite {
                        desc,
                        lblk,
                        src_buf: buf,
                    },
                );
                self.trace
                    .emit(now, || TraceEvent::CalloutArm { delay_ticks: 0 });
            }
            (DstEndpoint::File { .. }, Block::Bytes(data)) => {
                // Byte streams append; the cursor advances at dispatch
                // time so retries and reordered applies keep their slot.
                let off = d.dst_off;
                d.dst_off += len as u64;
                self.enqueue_kwork(
                    WorkClass::Soft,
                    m.splice_handler + m.buf_op,
                    KWork::SpliceAppend {
                        desc,
                        lblk,
                        off,
                        data,
                    },
                );
            }
            (DstEndpoint::Dev { .. }, block) => {
                let cost = m.splice_handler + m.copy_cost(CopyKind::Driver, len);
                self.enqueue_kwork(
                    WorkClass::Soft,
                    cost,
                    KWork::SpliceDevWrite {
                        desc,
                        lblk,
                        src: block,
                        off: 0,
                    },
                );
            }
            (DstEndpoint::Sock { .. }, block) => {
                let cost = m.splice_handler + m.udp_packet;
                self.enqueue_kwork(
                    WorkClass::Soft,
                    cost,
                    KWork::SpliceSockWrite {
                        desc,
                        lblk,
                        src: block,
                    },
                );
            }
        }
        self.span_note(desc, |s, now, pr, pw| s.note_write_issued(now, pr, pw));
    }

    /// Stage accounting for the moment a block's write is handed to its
    /// sink backend: closes the read-done → write-issue gap (first issue
    /// only) and stamps the write-service start. Every sink backend —
    /// shared-header file writes, stream appends, device pacing, socket
    /// sends — calls this right before issuing, so retries re-stamp and
    /// the service digest measures the attempt that completed.
    pub(crate) fn note_write_issue_stage(&mut self, desc: u64, lblk: u64) {
        let now = self.q.now();
        let Some(d) = self.splices.get_mut(&desc) else {
            return;
        };
        if let Some(done_at) = d.read_done_at.remove(&lblk) {
            self.kstat
                .stages
                .read_to_write
                .record(now.since(done_at).as_ns());
        }
        let d = self.splices.get_mut(&desc).unwrap();
        d.write_issued_at.insert(lblk, now);
    }

    /// Common completion/flow-control tail of the write side, for every
    /// sink (§5.2.2–§5.2.3).
    pub(crate) fn splice_block_completed(&mut self, desc: u64, lblk: u64, bytes: u64) {
        let flow = self.cfg.flow;
        let Some(d) = self.splices.get_mut(&desc) else {
            return;
        };
        d.pending_writes -= 1;
        d.blocks_done += 1;
        d.bytes_done += bytes;
        let issued = d.issued_at.remove(&lblk);
        let write_issued = d.write_issued_at.remove(&lblk);
        d.read_done_at.remove(&lblk);
        // A write that lands while the splice is aborting still moved
        // its bytes (they count toward the partial-transfer total) but
        // never refills or finishes; the abort tail completes instead.
        let aborting = d.error.is_some();
        let finished = !aborting
            && match &d.plan {
                ReadPlan::Mapped { src_map, .. } => d.blocks_done == src_map.len(),
                ReadPlan::Stream { .. } => d.bytes_done >= d.total,
            };
        let refill = !aborting
            && !finished
            && d.pending_reads < flow.lo_reads
            && d.pending_writes < flow.lo_writes;
        let (pr, pw) = (d.pending_reads, d.pending_writes);
        let now = self.q.now();
        self.trace
            .emit(now, || TraceEvent::SpliceWriteDone { desc, lblk });
        if refill {
            self.trace.emit(now, || TraceEvent::SpliceRefill { desc });
        }
        if let Some(span) = self.kstat.spans.get_mut(desc) {
            span.note_block_done(now, bytes, pr, pw);
            if finished {
                span.note_drained(now);
            }
            if refill {
                span.note_refill();
            }
        }
        if let Some(at) = write_issued {
            self.kstat
                .stages
                .write_service
                .record(now.since(at).as_ns());
        }
        if let Some(at) = issued {
            let ns = now.since(at).as_ns();
            self.kstat.splice_block_latency.record(ns);
            self.kstat.stages.end_to_end.record(ns);
        }
        if finished {
            let cost = self.cfg.machine.signal_delivery;
            self.enqueue_kwork(WorkClass::Soft, cost, KWork::SpliceComplete { desc });
        } else if refill {
            let cost =
                self.cfg.machine.splice_handler + self.cfg.machine.buf_op * flow.batch as u64;
            self.enqueue_kwork(WorkClass::Soft, cost, KWork::SpliceIssueReads { desc });
        } else if aborting {
            self.maybe_finish_abort(desc);
        }
    }

    // ----- failure handling: retry, backoff, abort ------------------------------

    /// A mapped-source block read completed with `B_ERROR`. The caller
    /// already dropped the pending-read slot and released the buffer;
    /// this counts the attempt and either arms the backoff retry callout
    /// or aborts the splice with `EIO`.
    fn splice_read_failed(&mut self, desc: u64, lblk: u64) {
        let now = self.q.now();
        let Some(d) = self.splices.get_mut(&desc) else {
            return;
        };
        if d.error.is_some() {
            self.maybe_finish_abort(desc);
            return;
        }
        let limit = d.retry_limit;
        let attempt = {
            let a = d.retries.entry(lblk).or_insert(0);
            *a += 1;
            *a
        };
        if attempt > limit {
            self.splice_abort(desc, Errno::Eio);
            return;
        }
        self.stats.bump("splice.retries");
        self.trace.emit(now, || TraceEvent::SpliceRetry {
            desc,
            lblk,
            attempt,
        });
        self.span_note(desc, |s, _, _, _| s.note_backoff());
        // Exponential backoff: 1, 2, 4, 8, 16 ticks.
        let delay = 1u64 << (attempt - 1);
        self.kstat
            .stages
            .retry_backoff
            .record(delay * self.cfg.machine.tick().as_ns());
        self.callout
            .schedule(self.tick, delay, KWork::SpliceRetryRead { desc, lblk });
        self.trace
            .emit(now, || TraceEvent::CalloutArm { delay_ticks: delay });
    }

    /// Backoff expiry: re-issue one failed mapped-source read. The read
    /// cursor moved past this block when it was first issued, so the
    /// re-issue must not advance it again (`retry = true`).
    fn splice_retry_read(&mut self, desc: u64, lblk: u64) {
        let Some(d) = self.splices.get(&desc) else {
            return;
        };
        if d.done {
            return;
        }
        if d.error.is_some() {
            self.maybe_finish_abort(desc);
            return;
        }
        let (pblk, disk) = match (&d.plan, d.src) {
            (ReadPlan::Mapped { src_map, .. }, SrcEndpoint::File { disk, .. }) => {
                (src_map[lblk as usize], disk)
            }
            _ => unreachable!("read retries are armed for mapped sources only"),
        };
        self.file_issue_read(desc, lblk, pblk, disk, IoCtx::Kernel, true);
    }

    /// A block-sink shared-header write completed with `B_ERROR`. The
    /// source buffer is still held in `src_bufs` and block rewrites are
    /// idempotent (a torn write is overwritten wholesale on the next
    /// attempt), so a retry re-runs just the write side of this block.
    pub(crate) fn splice_write_failed(&mut self, desc: u64, lblk: u64) {
        let now = self.q.now();
        let Some(d) = self.splices.get_mut(&desc) else {
            return;
        };
        let src_buf = d.src_bufs.get(&lblk).copied();
        if d.error.is_some() {
            // Abort drain: drop the slot and the held source buffer.
            d.pending_writes -= 1;
            d.issued_at.remove(&lblk);
            d.write_issued_at.remove(&lblk);
            d.src_bufs.remove(&lblk);
            if let Some(buf) = src_buf {
                self.release_buf(buf);
            }
            self.maybe_finish_abort(desc);
            return;
        }
        let limit = d.retry_limit;
        let attempt = {
            let a = d.retries.entry(lblk).or_insert(0);
            *a += 1;
            *a
        };
        if attempt > limit {
            // This block's write has terminally failed: nothing further
            // will arrive for it, so surrender its slot before aborting
            // (the abort completes once the *other* in-flight blocks
            // drain).
            d.pending_writes -= 1;
            d.issued_at.remove(&lblk);
            d.write_issued_at.remove(&lblk);
            d.src_bufs.remove(&lblk);
            if let Some(buf) = src_buf {
                self.release_buf(buf);
            }
            self.splice_abort(desc, Errno::Eio);
            return;
        }
        let Some(src_buf) = src_buf else {
            // The source buffer vanished (teardown race): drop the slot.
            d.pending_writes -= 1;
            d.issued_at.remove(&lblk);
            d.write_issued_at.remove(&lblk);
            return;
        };
        self.stats.bump("splice.retries");
        self.trace.emit(now, || TraceEvent::SpliceRetry {
            desc,
            lblk,
            attempt,
        });
        self.span_note(desc, |s, _, _, _| s.note_backoff());
        let delay = 1u64 << (attempt - 1);
        self.kstat
            .stages
            .retry_backoff
            .record(delay * self.cfg.machine.tick().as_ns());
        self.callout.schedule(
            self.tick,
            delay,
            KWork::SpliceWrite {
                desc,
                lblk,
                src_buf,
            },
        );
        self.trace
            .emit(now, || TraceEvent::CalloutArm { delay_ticks: delay });
    }

    /// Abort-drain check for write-side handlers: if the splice is
    /// aborting, discard the block, surrender its pending-write slot and
    /// any held source buffer, and try to finish the abort. Returns true
    /// when the work was drained (the handler must return immediately).
    pub(crate) fn splice_drain_write(
        &mut self,
        desc: u64,
        lblk: u64,
        block: Option<Block>,
    ) -> bool {
        let aborting = self
            .splices
            .get(&desc)
            .map(|d| d.error.is_some())
            .unwrap_or(false);
        if !aborting {
            return false;
        }
        let d = self.splices.get_mut(&desc).unwrap();
        d.pending_writes -= 1;
        d.issued_at.remove(&lblk);
        d.read_done_at.remove(&lblk);
        d.write_issued_at.remove(&lblk);
        let held = d.src_bufs.remove(&lblk);
        if let Some(buf) = held {
            self.release_buf(buf);
        } else if let Some(Block::Buf(buf)) = block {
            self.release_buf(buf);
        }
        self.maybe_finish_abort(desc);
        true
    }

    /// Transitions a splice into the aborting state: the typed errno is
    /// recorded, no further reads are issued, and in-flight work drains
    /// without refilling. Completion (buffer release, wakeup/`SIGIO`) is
    /// deferred until the last in-flight block lands.
    pub(crate) fn splice_abort(&mut self, desc: u64, e: Errno) {
        let Some(d) = self.splices.get_mut(&desc) else {
            return;
        };
        if d.done || d.error.is_some() {
            return;
        }
        d.error = Some(e);
        self.stats.bump("splice.aborted");
        let now = self.q.now();
        self.trace.emit(now, || TraceEvent::SpliceAbort {
            desc,
            errno: errno_name(e),
        });
        self.maybe_finish_abort(desc);
    }

    /// Completes an aborting splice once nothing is in flight, releasing
    /// every still-held source buffer so the cache leaks nothing.
    pub(crate) fn maybe_finish_abort(&mut self, desc: u64) {
        let Some(d) = self.splices.get_mut(&desc) else {
            return;
        };
        if d.error.is_none() || d.done || d.pending_reads != 0 || d.pending_writes != 0 {
            return;
        }
        let bufs: Vec<BufId> = d.src_bufs.drain().map(|(_, b)| b).collect();
        d.issued_at.clear();
        d.read_done_at.clear();
        d.write_issued_at.clear();
        for b in bufs {
            self.release_buf(b);
        }
        self.complete_splice(desc);
    }

    /// The typed completion status of splice `desc`:
    /// [`OutcomeStatus::Done`] once it finished (successfully or by
    /// abort), [`OutcomeStatus::Pending`] while still in flight,
    /// [`OutcomeStatus::Unknown`] for descriptor ids the kernel never
    /// issued.
    pub fn splice_outcome(&self, desc: u64) -> OutcomeStatus {
        if let Some(o) = self.splice_outcomes.get(&desc) {
            return OutcomeStatus::Done(*o);
        }
        if self.splices.contains_key(&desc) {
            return OutcomeStatus::Pending;
        }
        OutcomeStatus::Unknown
    }

    /// Source closed mid-splice = EOF: clamp the target to what was
    /// actually pulled and let in-flight writes drain before completing.
    pub(crate) fn finish_splice_now(&mut self, desc: u64) {
        let Some(d) = self.splices.get_mut(&desc) else {
            return;
        };
        if let ReadPlan::Stream { .. } = d.plan {
            d.total = d.total.min(d.stream_taken);
        }
        if d.pending_writes == 0 && d.bytes_done >= d.total {
            self.complete_splice(desc);
        }
        // Otherwise the last splice_block_completed sees bytes_done reach
        // the clamped total and completes the splice.
    }

    /// Finalisation, one tail for every entry path: latch the outcome,
    /// tear down device streams and the socket index, then hand the
    /// descriptor to [`Kernel::ring_deliver`], which queues the CQE /
    /// posts `SIGIO` / wakes reapers per the entry's [`RingRoute`].
    fn complete_splice(&mut self, desc: u64) {
        let now = self.q.now();
        let Some(d) = self.splices.get_mut(&desc) else {
            return;
        };
        if d.done {
            return;
        }
        d.done = true;
        let dst = d.dst;
        let src = d.src;
        let outcome = SpliceOutcome {
            bytes_moved: d.bytes_done,
            error: d.error,
        };
        self.splice_outcomes.insert(desc, outcome);
        // An in-kernel serve delivers to a connection socket: land the
        // moved bytes (and any failure) on the staged request span.
        if let DstEndpoint::Sock { sock } = dst {
            self.obs
                .note_transfer(sock.0, outcome.bytes_moved, outcome.error.map(errno_name));
        }
        if let DstEndpoint::Dev { cdev } = dst {
            if let CharDev::Audio(a) = &mut self.cdevs[cdev].dev {
                a.end_stream(now);
            }
        }
        if let SrcEndpoint::Sock { sock } = src {
            self.rings.unbind_sock(sock);
        }
        if outcome.error.is_none() {
            self.stats.bump("splice.completed");
        }
        if let Some(span) = self.kstat.spans.get_mut(desc) {
            span.note_completed(now);
        }
        self.trace.emit(now, || TraceEvent::SpliceComplete { desc });
        self.splices.remove(&desc);
        self.ring_deliver(desc, outcome);
    }
}

/// Canonical errno spelling for trace records and reports.
pub(crate) fn errno_name(e: Errno) -> &'static str {
    match e {
        Errno::Enoent => "ENOENT",
        Errno::Eexist => "EEXIST",
        Errno::Ebadf => "EBADF",
        Errno::Einval => "EINVAL",
        Errno::Enospc => "ENOSPC",
        Errno::Eisdir => "EISDIR",
        Errno::Enotdir => "ENOTDIR",
        Errno::Enotempty => "ENOTEMPTY",
        Errno::Eio => "EIO",
        Errno::Enotsup => "ENOTSUP",
        Errno::Efbig => "EFBIG",
        Errno::Eintr => "EINTR",
        Errno::Eaddrinuse => "EADDRINUSE",
        Errno::Enotconn => "ENOTCONN",
        Errno::Emsgsize => "EMSGSIZE",
        Errno::Eagain => "EAGAIN",
    }
}

fn plan_first_boff(plan: &ReadPlan) -> usize {
    match plan {
        ReadPlan::Mapped { first_boff, .. } => *first_boff,
        ReadPlan::Stream { .. } => 0,
    }
}

pub(crate) fn fs_errno(e: kfs::FsError) -> Errno {
    match e {
        kfs::FsError::NotFound => Errno::Enoent,
        kfs::FsError::Exists => Errno::Eexist,
        kfs::FsError::NotDir => Errno::Enotdir,
        kfs::FsError::IsDir => Errno::Eisdir,
        kfs::FsError::NoSpace => Errno::Enospc,
        kfs::FsError::FileTooBig => Errno::Efbig,
        kfs::FsError::BadName => Errno::Einval,
        kfs::FsError::NotEmpty => Errno::Enotempty,
    }
}
