//! The splice engine (§5 of the paper).
//!
//! A `splice(src_fd, dst_fd, size)` builds a **splice descriptor**: a
//! self-contained record of everything the transfer needs — source and
//! destination physical block tables obtained with `bmap`/the allocating
//! `bmap` (§5.2), watermark counters (§5.2.3), and completion routing
//! (`FASYNC`/`SIGIO` or a sleeping synchronous caller). "Placing all
//! necessary information in this descriptor allows I/O to proceed without
//! requiring the calling process context to be available."
//!
//! The data path then runs entirely in kernel completion context:
//!
//! * **Read side** (§5.2.1) — `bread_call` schedules a device read whose
//!   `b_iodone` handler ([`crate::event::KWork::SpliceReadDone`]) fires at
//!   the completion interrupt, and queues the write side *at the head of
//!   the callout list*.
//! * **Write side** (§5.2.2) — at softclock, the write handler allocates a
//!   destination buffer *header* whose data pointer aliases the read
//!   buffer's data area (no cache-to-cache copy) and issues `bawrite` with
//!   a completion handler.
//! * **Flow control** (§5.2.3) — the write-completion handler frees both
//!   buffers and, "if the number of pending reads and the number of
//!   pending writes drop below pre-specified watermarks (currently 3 and
//!   5 …), will issue up to five additional reads."
//!
//! Character-device sinks replace the write side with paced device
//! delivery (the audio DAC's back-pressure is what rate-limits a whole-
//! file audio splice), and socket endpoints replace block I/O with
//! datagram forwarding pumps.

use std::collections::HashMap;

use kbuf::{BreadOutcome, BufId, SpliceRef};
use kfs::Ino;
use khw::CopyKind;
use knet::{Datagram, SockId};
use kproc::{Chan, ChanSpace, Errno, Pid, SpliceLen, SyscallRet, WorkClass};
use ksim::Dur;

use crate::event::{Event, KWork};
use crate::kernel::{IoCtx, Kernel};
use crate::objects::{CharDev, FileId, FileObj};
use crate::syscalls::{Cont, SyscallOutcome};

/// The §5.2.3 rate-based flow-control parameters.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FlowControl {
    /// Issue more reads only when pending reads drop below this.
    pub lo_reads: u32,
    /// … and pending writes below this.
    pub lo_writes: u32,
    /// Reads issued per refill ("up to five additional reads").
    pub batch: u32,
}

impl Default for FlowControl {
    fn default() -> Self {
        FlowControl {
            lo_reads: 3,
            lo_writes: 5,
            batch: 5,
        }
    }
}

/// Source endpoint of a splice.
#[derive(Clone, Copy, Debug)]
pub(crate) enum Source {
    /// A regular file: block-table-driven reads.
    File { disk: usize, ino: Ino },
    /// A framebuffer character device.
    Fb { cdev: usize },
    /// A UDP socket.
    Sock { sock: SockId },
}

/// Sink endpoint of a splice.
#[derive(Clone, Copy, Debug)]
pub(crate) enum Sink {
    /// A regular file: shared-header writes.
    File { disk: usize, ino: Ino },
    /// A character device (audio/video DAC).
    Dev { cdev: usize },
    /// A UDP socket.
    Sock { sock: SockId },
}

/// One active splice.
pub(crate) struct SpliceDesc {
    pub id: u64,
    pub owner: Pid,
    pub fasync: bool,
    pub src: Source,
    pub dst: Sink,
    /// Bytes this splice will move.
    pub total: u64,
    pub bytes_done: u64,
    // --- file-source state (§5.2's block tables) ---
    /// Physical source block per logical splice block.
    pub src_map: Vec<u64>,
    /// Bytes of each splice block that belong to the transfer.
    pub src_lens: Vec<usize>,
    /// Offset of the transfer within the first block.
    pub first_boff: usize,
    /// Physical destination block per logical splice block (file sink).
    pub dst_map: Vec<u64>,
    pub next_read: usize,
    pub pending_reads: u32,
    pub pending_writes: u32,
    pub blocks_done: usize,
    /// Read-side buffers awaiting their write, by logical block.
    pub src_bufs: HashMap<u64, BufId>,
    /// Issue instants of in-flight blocks (latency accounting).
    pub issued_at: HashMap<u64, ksim::SimTime>,
    // --- socket/framebuffer-source state ---
    pub dst_sock: Option<SockId>,
    /// Append cursor for a file sink fed by a pump.
    pub dst_off: u64,
    pub chunk: usize,
    pub done: bool,
}

impl SpliceDesc {
    fn nblocks(&self) -> usize {
        self.src_map.len()
    }
}

impl Kernel {
    // ----- the splice(2) entry point -----------------------------------------

    pub(crate) fn sys_splice(
        &mut self,
        pid: Pid,
        sfid: FileId,
        dfid: FileId,
        len: SpliceLen,
    ) -> SyscallOutcome {
        let _m = self.cfg.machine.clone();
        let sof = self.files.get(sfid).expect("resolved fid");
        let dof = self.files.get(dfid).expect("resolved fid");
        let fasync = sof.fasync || dof.fasync;

        let src = match sof.obj {
            FileObj::File { disk, ino } => Source::File { disk, ino },
            FileObj::Chr { cdev } => match self.cdevs[cdev].dev {
                CharDev::Fb(_) => Source::Fb { cdev },
                _ => return self.splice_err(Errno::Enotsup),
            },
            FileObj::Sock { sock } => Source::Sock { sock },
        };
        let dst = match dof.obj {
            FileObj::File { disk, ino } => {
                if !dof.writable {
                    return self.splice_err(Errno::Ebadf);
                }
                Sink::File { disk, ino }
            }
            FileObj::Chr { cdev } => match self.cdevs[cdev].dev {
                CharDev::Audio(_) | CharDev::Video(_) => Sink::Dev { cdev },
                CharDev::Fb(_) => return self.splice_err(Errno::Enotsup),
            },
            FileObj::Sock { sock } => {
                if self.net.peer(sock).is_none() {
                    return self.splice_err(Errno::Enotconn);
                }
                Sink::Sock { sock }
            }
        };

        match src {
            Source::File { disk, ino } => self.splice_from_file(pid, sfid, dfid, disk, ino, dst, len, fasync),
            Source::Fb { .. } | Source::Sock { .. } => {
                self.splice_pump_setup(pid, src, dst, len, fasync)
            }
        }
    }

    fn splice_err(&self, e: Errno) -> SyscallOutcome {
        SyscallOutcome::Done {
            cpu: self.cfg.machine.syscall,
            ret: SyscallRet::Err(e),
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn splice_from_file(
        &mut self,
        pid: Pid,
        sfid: FileId,
        dfid: FileId,
        sdisk: usize,
        sino: Ino,
        dst: Sink,
        len: SpliceLen,
        fasync: bool,
    ) -> SyscallOutcome {
        let m = self.cfg.machine.clone();
        let bs = self.cfg.block_size as u64;

        // §5.2: "the size of the source file is determined from
        // information present in the gnode."
        let offset = self.files.get(sfid).unwrap().offset;
        let size = self.disks[sdisk].fs.size(sino);
        let avail = size.saturating_sub(offset);
        let total = match len {
            SpliceLen::Bytes(n) => n.min(avail),
            SpliceLen::Eof => avail,
        };
        if total == 0 {
            return SyscallOutcome::Done {
                cpu: m.syscall,
                ret: SyscallRet::Val(0),
            };
        }

        let first_boff = (offset % bs) as usize;
        if matches!(dst, Sink::File { .. }) {
            // Whole-block sharing needs aligned endpoints.
            let dst_off = self.files.get(dfid).unwrap().offset;
            if first_boff != 0 || !dst_off.is_multiple_of(bs) {
                return self.splice_err(Errno::Einval);
            }
        }

        // §5.2: "The entire list of all physical block numbers comprising
        // the source file is determined by successive calls to bmap()."
        let first_lblk = offset / bs;
        let nblocks = ((first_boff as u64 + total).div_ceil(bs)) as usize;
        let mut src_map = Vec::with_capacity(nblocks);
        let mut src_lens = Vec::with_capacity(nblocks);
        let mut remaining = total;
        for i in 0..nblocks {
            let Some(pblk) = self.disks[sdisk].fs.bmap(sino, first_lblk + i as u64) else {
                // Holes are not spliceable: there is no source block to
                // read and share.
                return self.splice_err(Errno::Einval);
            };
            src_map.push(pblk);
            let boff = if i == 0 { first_boff } else { 0 };
            let take = ((bs as usize) - boff).min(remaining as usize);
            src_lens.push(take);
            remaining -= take as u64;
        }
        debug_assert_eq!(remaining, 0);

        // Destination mapping via the allocating bmap (§5.2: "a special
        // version of bmap() is used … which avoids delayed-writes of
        // freshly allocated, zero-filled blocks").
        let mut dst_map = Vec::new();
        if let Sink::File { disk, ino } = dst {
            let dst_off = self.files.get(dfid).unwrap().offset;
            let first = dst_off / bs;
            for i in 0..nblocks {
                match self.disks[disk].fs.bmap_alloc(ino, first + i as u64) {
                    Ok(p) => dst_map.push(p),
                    Err(e) => return self.splice_err(crate::splice_engine::fs_errno(e)),
                }
            }
            let fs = &mut self.disks[disk].fs;
            let new_size = dst_off + total;
            if new_size > fs.size(ino) {
                fs.set_size(ino, new_size);
            }
        }

        // Advance both descriptors past the spliced range.
        self.files.get_mut(sfid).unwrap().offset += total;
        if matches!(dst, Sink::File { .. }) {
            self.files.get_mut(dfid).unwrap().offset += total;
        }

        let id = self.next_splice;
        self.next_splice += 1;
        let desc = SpliceDesc {
            id,
            owner: pid,
            fasync,
            src: Source::File {
                disk: sdisk,
                ino: sino,
            },
            dst,
            total,
            bytes_done: 0,
            src_map,
            src_lens,
            first_boff,
            dst_map,
            next_read: 0,
            pending_reads: 0,
            pending_writes: 0,
            blocks_done: 0,
            src_bufs: HashMap::new(),
            issued_at: HashMap::new(),
            dst_sock: match dst {
                Sink::Sock { sock } => Some(sock),
                _ => None,
            },
            dst_off: 0,
            chunk: 0,
            done: false,
        };
        self.splices.insert(id, desc);
        self.stats.bump("splice.started");
        self.kstat.spans.start(id, self.q.now());

        // Descriptor build cost: the bmap walks plus allocation.
        let mut cpu = m.syscall + m.buf_op + Dur::from_us(2) * (nblocks as u64 * 2);
        // Initial reads are issued in the caller's context.
        cpu += self.splice_issue_reads(id, IoCtx::Process);

        if fasync {
            SyscallOutcome::Done {
                cpu,
                ret: SyscallRet::Val(0),
            }
        } else {
            self.conts.insert(pid, Cont::SpliceSync { desc: id });
            SyscallOutcome::Block {
                cpu,
                chan: Chan::new(ChanSpace::Splice, id),
            }
        }
    }

    fn splice_pump_setup(
        &mut self,
        pid: Pid,
        src: Source,
        dst: Sink,
        len: SpliceLen,
        fasync: bool,
    ) -> SyscallOutcome {
        let m = self.cfg.machine.clone();
        if matches!(dst, Sink::Dev { .. }) {
            // device→device cross-connects are not implemented.
            return self.splice_err(Errno::Enotsup);
        }
        let SpliceLen::Bytes(total) = len else {
            // A socket or framebuffer has no EOF to reach.
            return self.splice_err(Errno::Einval);
        };
        if total == 0 {
            return SyscallOutcome::Done {
                cpu: m.syscall,
                ret: SyscallRet::Val(0),
            };
        }
        let id = self.next_splice;
        self.next_splice += 1;
        let dst_sock = match dst {
            Sink::Sock { sock } => Some(sock),
            _ => None,
        };
        // File sinks append from the file's current size.
        let dst_off = match dst {
            Sink::File { disk, ino } => self.disks[disk].fs.size(ino),
            _ => 0,
        };
        let desc = SpliceDesc {
            id,
            owner: pid,
            fasync,
            src,
            dst,
            total,
            bytes_done: 0,
            src_map: Vec::new(),
            src_lens: Vec::new(),
            first_boff: 0,
            dst_map: Vec::new(),
            next_read: 0,
            pending_reads: 0,
            pending_writes: 0,
            blocks_done: 0,
            src_bufs: HashMap::new(),
            issued_at: HashMap::new(),
            dst_sock,
            dst_off,
            chunk: 8192,
            done: false,
        };
        self.splices.insert(id, desc);
        self.stats.bump("splice.started");
        self.kstat.spans.start(id, self.q.now());
        match src {
            Source::Sock { sock } => {
                self.sock_splices.insert(sock, id);
                // Drain anything already queued.
                if self.net.rcv_ready(sock) {
                    self.enqueue_kwork(
                        WorkClass::Soft,
                        m.splice_handler,
                        KWork::SplicePump { desc: id },
                    );
                }
            }
            Source::Fb { .. } => {
                let cost = m.splice_handler + m.copy_cost(CopyKind::Driver, 8192);
                self.enqueue_kwork(WorkClass::Soft, cost, KWork::SplicePump { desc: id });
            }
            Source::File { .. } => unreachable!(),
        }
        if fasync {
            SyscallOutcome::Done {
                cpu: m.syscall,
                ret: SyscallRet::Val(0),
            }
        } else {
            self.conts.insert(pid, Cont::SpliceSync { desc: id });
            SyscallOutcome::Block {
                cpu: m.syscall,
                chan: Chan::new(ChanSpace::Splice, id),
            }
        }
    }

    /// A synchronous splice caller woke up: deliver the byte count if the
    /// transfer finished, or go back to sleep.
    pub(crate) fn resume_splice_sync(&mut self, pid: Pid, desc: u64) -> SyscallOutcome {
        let done = self.splices.get(&desc).map(|d| d.done).unwrap_or(true);
        if !done {
            self.conts.insert(pid, Cont::SpliceSync { desc });
            return SyscallOutcome::Block {
                cpu: Dur::ZERO,
                chan: Chan::new(ChanSpace::Splice, desc),
            };
        }
        let total = self
            .splices
            .remove(&desc)
            .map(|d| d.bytes_done)
            .unwrap_or(0);
        SyscallOutcome::Done {
            cpu: self.cfg.machine.buf_op,
            ret: SyscallRet::Val(total as i64),
        }
    }

    // ----- read issuing (§5.2.1 + §5.2.3) --------------------------------------

    /// Runs a span-note closure for descriptor `desc`, handing it the
    /// current time and the descriptor's pending-work gauges. A no-op for
    /// descriptors that are already gone (teardown races).
    fn span_note(
        &mut self,
        desc: u64,
        f: impl FnOnce(&mut ksim::SpliceSpan, ksim::SimTime, u32, u32),
    ) {
        let Some(d) = self.splices.get(&desc) else {
            return;
        };
        let (pr, pw) = (d.pending_reads, d.pending_writes);
        let now = self.q.now();
        if let Some(span) = self.kstat.spans.get_mut(desc) {
            f(span, now, pr, pw);
        }
    }

    /// Issues reads up to the batch limit. Returns CPU cost incurred in
    /// the caller's context (setup path).
    pub(crate) fn splice_issue_reads(&mut self, id: u64, ctx: IoCtx) -> Dur {
        let m = self.cfg.machine.clone();
        let bs = self.cfg.block_size as usize;
        let mut cpu = Dur::ZERO;
        loop {
            let Some(d) = self.splices.get(&id) else {
                return cpu;
            };
            if d.done || d.pending_reads >= self.cfg.flow.batch || d.next_read >= d.nblocks() {
                return cpu;
            }
            let lblk = d.next_read as u64;
            let pblk = d.src_map[d.next_read];
            let Source::File { disk, .. } = d.src else {
                unreachable!("block reads only for file sources")
            };
            let dev = self.disks[disk].dev;
            {
                let now = self.q.now();
                let d = self.splices.get_mut(&id).unwrap();
                d.next_read += 1;
                d.pending_reads += 1;
                d.issued_at.insert(lblk, now);
            }

            let work = KWork::SpliceReadDone {
                desc: id,
                lblk,
                buf: BufId(u32::MAX), // patched below on miss
            };
            let sref = SpliceRef { desc: id, lblk };
            let tag = self.new_iodone(work);
            let mut fx = Vec::new();
            let out = self.cache.bread_call(dev, pblk, bs, tag, sref, &mut fx);
            // Patch the handler with the buffer identity *before* applying
            // effects: a synchronous (RAM-disk) completion dispatches the
            // handler during effect application.
            if let BreadOutcome::Miss(buf) = out {
                if let Some(KWork::SpliceReadDone { buf: b, .. }) = self.iodone_map.get_mut(&tag)
                {
                    *b = buf;
                }
            }
            cpu += self.apply_cache_effects(fx, ctx) + m.buf_op;
            match out {
                BreadOutcome::Miss(_) => {
                    self.stats.bump("splice.reads_issued");
                    self.span_note(id, |s, now, pr, pw| s.note_read_issued(now, pr, pw));
                }
                BreadOutcome::Hit(buf) => {
                    // Already cached: the handler runs straight away.
                    self.iodone_map.remove(&tag);
                    self.stats.bump("splice.read_hits");
                    self.span_note(id, |s, now, pr, pw| s.note_read_hit(now, pr, pw));
                    self.enqueue_kwork(
                        WorkClass::Soft,
                        m.splice_handler,
                        KWork::SpliceReadDone {
                            desc: id,
                            lblk,
                            buf,
                        },
                    );
                }
                BreadOutcome::Busy(_) | BreadOutcome::NoBuffers => {
                    // Back off a tick and retry.
                    self.iodone_map.remove(&tag);
                    let d = self.splices.get_mut(&id).unwrap();
                    d.next_read -= 1;
                    d.pending_reads -= 1;
                    self.stats.bump("splice.read_backoff");
                    self.span_note(id, |s, _, _, _| s.note_backoff());
                    self.callout
                        .schedule(self.tick, 1, KWork::SpliceIssueReads { desc: id });
                    return cpu;
                }
            }
        }
    }

    // ----- kernel-work handlers ---------------------------------------------------

    pub(crate) fn apply_splice_work(&mut self, work: KWork) {
        match work {
            KWork::SpliceReadDone { desc, lblk, buf } => self.splice_read_done(desc, lblk, buf),
            KWork::SpliceWrite {
                desc,
                lblk,
                src_buf,
            } => self.splice_write(desc, lblk, src_buf),
            KWork::SpliceWriteDone { desc, lblk, hdr } => self.splice_write_done(desc, lblk, hdr),
            KWork::SpliceIssueReads { desc } => {
                self.splice_issue_reads(desc, IoCtx::Kernel);
            }
            KWork::SpliceDevWrite {
                desc,
                lblk,
                src_buf,
                off,
            } => self.splice_dev_write(desc, lblk, src_buf, off),
            KWork::SpliceSockWrite {
                desc,
                lblk,
                src_buf,
            } => self.splice_sock_write(desc, lblk, src_buf),
            KWork::SplicePump { desc } => self.splice_pump(desc),
            KWork::SpliceComplete { desc } => self.complete_splice(desc),
            other => panic!("not splice work: {other:?}"),
        }
    }

    fn release_buf(&mut self, buf: BufId) {
        let mut fx = Vec::new();
        self.cache.brelse(buf, &mut fx);
        let sync = self.apply_cache_effects(fx, IoCtx::Kernel);
        debug_assert!(sync.is_zero());
    }

    /// §5.2.1: "When a read completes, the read handler is invoked which
    /// in turn schedules a write by placing a reference to the write
    /// handler at the head of the system callout list."
    fn splice_read_done(&mut self, desc: u64, lblk: u64, buf: BufId) {
        let Some(d) = self.splices.get_mut(&desc) else {
            self.release_buf(buf);
            return;
        };
        d.pending_reads -= 1;
        d.src_bufs.insert(lblk, buf);
        let dst = d.dst;
        match dst {
            Sink::File { .. } => {
                let d = self.splices.get_mut(&desc).unwrap();
                d.pending_writes += 1;
                self.callout.schedule_head(
                    self.tick,
                    KWork::SpliceWrite {
                        desc,
                        lblk,
                        src_buf: buf,
                    },
                );
            }
            Sink::Dev { .. } => {
                let d = self.splices.get_mut(&desc).unwrap();
                let len = d.src_lens[lblk as usize];
                d.pending_writes += 1;
                let cost = self.cfg.machine.splice_handler
                    + self.cfg.machine.copy_cost(CopyKind::Driver, len);
                self.enqueue_kwork(
                    WorkClass::Soft,
                    cost,
                    KWork::SpliceDevWrite {
                        desc,
                        lblk,
                        src_buf: buf,
                        off: 0,
                    },
                );
            }
            Sink::Sock { .. } => {
                let d = self.splices.get_mut(&desc).unwrap();
                d.pending_writes += 1;
                let cost = self.cfg.machine.splice_handler + self.cfg.machine.udp_packet;
                self.enqueue_kwork(
                    WorkClass::Soft,
                    cost,
                    KWork::SpliceSockWrite {
                        desc,
                        lblk,
                        src_buf: buf,
                    },
                );
            }
        }
        self.span_note(desc, |s, now, pr, pw| s.note_write_issued(now, pr, pw));
    }

    /// §5.2.2: the write side — allocate a header sharing the read
    /// buffer's data area and start the asynchronous write.
    fn splice_write(&mut self, desc: u64, lblk: u64, src_buf: BufId) {
        let Some(d) = self.splices.get(&desc) else {
            self.release_buf(src_buf);
            return;
        };
        let Sink::File { disk, .. } = d.dst else {
            panic!("splice_write with non-file sink")
        };
        let dst_pblk = d.dst_map[lblk as usize];
        let dev = self.disks[disk].dev;
        let bs = self.cfg.block_size as usize;
        let data = self.cache.data(src_buf);
        let sref = SpliceRef { desc, lblk };
        match self.cache.alloc_shared_header(dev, dst_pblk, data, bs, sref) {
            Some(hdr) => {
                self.stats.bump("splice.shared_writes");
                let tag = self.new_iodone(KWork::SpliceWriteDone { desc, lblk, hdr });
                let mut fx = Vec::new();
                self.cache.bawrite_call(hdr, tag, &mut fx);
                let sync = self.apply_cache_effects(fx, IoCtx::Kernel);
                debug_assert!(sync.is_zero());
            }
            None => {
                // Destination block busy: retry next tick.
                self.stats.bump("splice.write_backoff");
                self.span_note(desc, |s, _, _, _| s.note_backoff());
                self.callout.schedule(
                    self.tick,
                    1,
                    KWork::SpliceWrite {
                        desc,
                        lblk,
                        src_buf,
                    },
                );
            }
        }
    }

    /// §5.2.2–§5.2.3: the write-completion handler frees both buffers and
    /// refills the read pipeline when both watermarks allow.
    fn splice_write_done(&mut self, desc: u64, lblk: u64, hdr: BufId) {
        self.release_buf(hdr);
        let src_buf = self
            .splices
            .get_mut(&desc)
            .and_then(|d| d.src_bufs.remove(&lblk));
        if let Some(buf) = src_buf {
            // "It retrieves a pointer to the source-side buffer … and
            // frees it by calling brelse()." The source block stays
            // cached.
            self.release_buf(buf);
        }
        self.splice_block_completed(desc, lblk);
    }

    /// Device-sink write side: deliver as much of the block as the device
    /// accepts, honouring its pacing back-pressure; the remainder retries
    /// via the callout when space drains.
    fn splice_dev_write(&mut self, desc: u64, lblk: u64, src_buf: BufId, off: usize) {
        let now = self.q.now();
        let Some(d) = self.splices.get(&desc) else {
            self.release_buf(src_buf);
            return;
        };
        let Sink::Dev { cdev } = d.dst else {
            panic!("splice_dev_write with non-device sink")
        };
        let len = d.src_lens[lblk as usize];
        let want = len - off;
        let (accepted, retry_at) = match &mut self.cdevs[cdev].dev {
            CharDev::Audio(a) => {
                let took = a.write_some(now, want);
                let retry = if took < want {
                    Some(a.time_for_space(now, want - took))
                } else {
                    None
                };
                (took, retry)
            }
            CharDev::Video(v) => {
                v.write(now, want);
                (want, None)
            }
            CharDev::Fb(_) => unreachable!("fb is not a sink"),
        };
        if accepted > 0 {
            self.stats.add("copy.driver_bytes", accepted as u64);
        }
        match retry_at {
            None => {
                let d = self.splices.get_mut(&desc).unwrap();
                d.src_bufs.remove(&lblk);
                self.release_buf(src_buf);
                self.splice_block_completed(desc, lblk);
            }
            Some(at) => {
                let delay = at.saturating_since(now);
                let ticks = self.dur_to_ticks(delay);
                self.stats.bump("splice.dev_backpressure");
                self.span_note(desc, |s, _, _, _| s.note_backoff());
                self.callout.schedule(
                    self.tick,
                    ticks,
                    KWork::SpliceDevWrite {
                        desc,
                        lblk,
                        src_buf,
                        off: off + accepted,
                    },
                );
            }
        }
    }

    /// Socket-sink write side: one block becomes one datagram, no user
    /// copy.
    fn splice_sock_write(&mut self, desc: u64, lblk: u64, src_buf: BufId) {
        let now = self.q.now();
        let Some(d) = self.splices.get(&desc) else {
            self.release_buf(src_buf);
            return;
        };
        let sock = d.dst_sock.expect("socket sink");
        let len = d.src_lens[lblk as usize];
        let boff = if lblk == 0 { d.first_boff } else { 0 };
        let payload = {
            let data = self.cache.data(src_buf);
            let bytes = data.bytes();
            bytes[boff..boff + len].to_vec()
        };
        match self.net.send(now, sock, len) {
            Ok(tx) => {
                if let Some(dst) = tx.dst {
                    let src_addr = self.net.source_addr(sock).expect("socket exists");
                    self.q.schedule(
                        tx.arrival.max(now),
                        Event::NetDeliver {
                            dst,
                            dgram: Datagram {
                                src: src_addr,
                                data: payload,
                            },
                        },
                    );
                }
            }
            Err(_) => {
                self.stats.bump("splice.sock_send_err");
            }
        }
        let d = self.splices.get_mut(&desc).unwrap();
        d.src_bufs.remove(&lblk);
        self.release_buf(src_buf);
        self.splice_block_completed(desc, lblk);
    }

    /// Common completion/flow-control tail of the write side.
    fn splice_block_completed(&mut self, desc: u64, lblk: u64) {
        let flow = self.cfg.flow;
        let Some(d) = self.splices.get_mut(&desc) else {
            return;
        };
        d.pending_writes -= 1;
        d.blocks_done += 1;
        let bytes = d.src_lens[lblk as usize] as u64;
        d.bytes_done += bytes;
        let issued = d.issued_at.remove(&lblk);
        let finished = d.blocks_done == d.nblocks();
        let refill = !finished && d.pending_reads < flow.lo_reads && d.pending_writes < flow.lo_writes;
        let (pr, pw) = (d.pending_reads, d.pending_writes);
        let now = self.q.now();
        if let Some(span) = self.kstat.spans.get_mut(desc) {
            span.note_block_done(now, bytes, pr, pw);
            if finished {
                span.note_drained(now);
            }
            if refill {
                span.note_refill();
            }
        }
        if let Some(at) = issued {
            self.kstat.splice_block_latency.record(now.since(at).as_ns());
        }
        if finished {
            let cost = self.cfg.machine.signal_delivery;
            self.enqueue_kwork(WorkClass::Soft, cost, KWork::SpliceComplete { desc });
        } else if refill {
            let cost =
                self.cfg.machine.splice_handler + self.cfg.machine.buf_op * flow.batch as u64;
            self.enqueue_kwork(WorkClass::Soft, cost, KWork::SpliceIssueReads { desc });
        }
    }

    /// Socket/framebuffer source pump: move one chunk toward the sink.
    fn splice_pump(&mut self, desc: u64) {
        let now = self.q.now();
        let m = self.cfg.machine.clone();
        let Some(d) = self.splices.get(&desc) else {
            return;
        };
        if d.done {
            return;
        }
        let src = d.src;
        let dst = d.dst;
        let remaining = d.total - d.bytes_done;
        let chunk = d.chunk.min(remaining as usize);

        let payload: Option<Vec<u8>> = match src {
            Source::Sock { sock } => self
                .net
                .recv(sock)
                .ok()
                .flatten()
                .map(|dgram| dgram.data),
            Source::Fb { cdev } => {
                let CharDev::Fb(fb) = &mut self.cdevs[cdev].dev else {
                    unreachable!()
                };
                Some(fb.read(now, chunk))
            }
            Source::File { .. } => unreachable!(),
        };
        let Some(payload) = payload else {
            // Socket empty: the next delivery re-pumps.
            return;
        };
        let n = payload.len().min(remaining as usize) as u64;
        let payload = payload[..n as usize].to_vec();
        match dst {
            Sink::Sock { sock } => {
                if let Ok(tx) = self.net.send(now, sock, payload.len()) {
                    if let Some(dst) = tx.dst {
                        let src_addr = self.net.source_addr(sock).expect("socket exists");
                        self.q.schedule(
                            tx.arrival.max(now),
                            Event::NetDeliver {
                                dst,
                                dgram: Datagram {
                                    src: src_addr,
                                    data: payload,
                                },
                            },
                        );
                    }
                }
            }
            Sink::File { disk, ino } => {
                let off = self.splices[&desc].dst_off;
                if !self.splice_append_file(disk, ino, off, &payload) {
                    // Transient cache shortage: put the data back (socket
                    // sources) and retry at the next tick.
                    if let Source::Sock { sock } = src {
                        let src_addr =
                            self.net.source_addr(sock).unwrap_or(knet::NetAddr {
                                host: 1,
                                port: 0,
                            });
                        let _ = self.net.requeue_front(
                            sock,
                            Datagram {
                                src: src_addr,
                                data: payload,
                            },
                        );
                    }
                    self.stats.bump("splice.append_backoff");
                    self.span_note(desc, |s, _, _, _| s.note_backoff());
                    self.callout
                        .schedule(self.tick, 1, KWork::SplicePump { desc });
                    return;
                }
                let d = self.splices.get_mut(&desc).unwrap();
                d.dst_off += n;
            }
            Sink::Dev { .. } => unreachable!("pump sinks are sockets or files"),
        }
        let d = self.splices.get_mut(&desc).unwrap();
        d.bytes_done += n;
        let finished = d.bytes_done >= d.total;
        // A pump chunk is read-and-written in one handler: the gauges are
        // always zero, but the cumulative counters and timestamps still
        // describe the transfer's shape.
        if let Some(span) = self.kstat.spans.get_mut(desc) {
            span.note_read_issued(now, 0, 0);
            span.note_write_issued(now, 0, 0);
            span.note_block_done(now, n, 0, 0);
            if finished {
                span.note_drained(now);
            }
        }
        if finished {
            self.enqueue_kwork(
                WorkClass::Soft,
                m.signal_delivery,
                KWork::SpliceComplete { desc },
            );
            return;
        }
        // Keep pumping: a framebuffer is always ready; a socket pumps
        // again if more data is queued (otherwise the next delivery
        // triggers it).
        let again = match src {
            Source::Fb { .. } => true,
            Source::Sock { sock } => self.net.rcv_ready(sock),
            Source::File { .. } => unreachable!(),
        };
        if again {
            let cost = match src {
                Source::Fb { .. } => {
                    m.splice_handler + m.udp_packet + m.copy_cost(CopyKind::Driver, chunk)
                }
                _ => m.splice_handler + m.udp_packet,
            };
            self.enqueue_kwork(WorkClass::Soft, cost, KWork::SplicePump { desc });
        }
    }

    /// Appends `data` to a file at `off` through the buffer cache, in
    /// kernel context (no `copyin`; the data is already in the kernel).
    /// Returns `false` on a transient buffer shortage — the caller must
    /// retry with the same bytes (block rewrites are idempotent).
    fn splice_append_file(&mut self, disk: usize, ino: kfs::Ino, off: u64, data: &[u8]) -> bool {
        let bs = self.cfg.block_size as usize;
        let dev = self.disks[disk].dev;
        let mut pos = 0usize;
        while pos < data.len() {
            let abs = off + pos as u64;
            let lblk = abs / bs as u64;
            let boff = (abs % bs as u64) as usize;
            let take = (bs - boff).min(data.len() - pos);
            let existed = self.disks[disk].fs.bmap(ino, lblk).is_some();
            let Ok(pblk) = self.disks[disk].fs.bmap_alloc(ino, lblk) else {
                // Out of space: drop the rest (UDP semantics for a
                // receive-to-file splice).
                self.stats.bump("splice.append_enospc");
                return true;
            };
            let mut fx = Vec::new();
            let out = self.cache.getblk(dev, pblk, bs, &mut fx);
            let sync = self.apply_cache_effects(fx, IoCtx::Kernel);
            debug_assert!(sync.is_zero());
            match out {
                kbuf::GetblkOutcome::Held(buf) => {
                    let full = boff == 0 && take == bs;
                    if !full && !existed {
                        self.cache.data(buf).bytes_mut().fill(0);
                    }
                    {
                        let d = self.cache.data(buf);
                        let mut bytes = d.bytes_mut();
                        bytes[boff..boff + take].copy_from_slice(&data[pos..pos + take]);
                    }
                    let mut fx = Vec::new();
                    if full {
                        self.cache.bawrite(buf, &mut fx);
                    } else {
                        self.cache.bdwrite(buf, &mut fx);
                    }
                    self.apply_cache_effects(fx, IoCtx::Kernel);
                }
                kbuf::GetblkOutcome::Busy(_) | kbuf::GetblkOutcome::NoBuffers => {
                    return false;
                }
            }
            pos += take;
            let fs = &mut self.disks[disk].fs;
            let end = abs + take as u64;
            if end > fs.size(ino) {
                fs.set_size(ino, end);
            }
        }
        true
    }

    /// Forces completion (source closed mid-splice = EOF).
    pub(crate) fn finish_splice_now(&mut self, desc: u64) {
        self.complete_splice(desc);
    }

    /// Finalisation: `SIGIO` for asynchronous splices (§3), a wakeup for
    /// synchronous callers, device stream teardown.
    fn complete_splice(&mut self, desc: u64) {
        let now = self.q.now();
        let Some(d) = self.splices.get_mut(&desc) else {
            return;
        };
        d.done = true;
        let owner = d.owner;
        let fasync = d.fasync;
        let dst = d.dst;
        let src = d.src;
        if let Sink::Dev { cdev } = dst {
            if let CharDev::Audio(a) = &mut self.cdevs[cdev].dev {
                a.end_stream(now);
            }
        }
        if let Source::Sock { sock } = src {
            self.sock_splices.remove(&sock);
        }
        self.stats.bump("splice.completed");
        if let Some(span) = self.kstat.spans.get_mut(desc) {
            span.note_completed(now);
        }
        let id = self.splices[&desc].id;
        self.trace.emit(now, || format!("splice {id} complete"));
        if fasync {
            self.splices.remove(&desc);
            self.post_sigio(owner);
        } else {
            self.wakeup(Chan::new(ChanSpace::Splice, desc));
        }
    }
}

pub(crate) fn fs_errno(e: kfs::FsError) -> Errno {
    match e {
        kfs::FsError::NotFound => Errno::Enoent,
        kfs::FsError::Exists => Errno::Eexist,
        kfs::FsError::NotDir => Errno::Enotdir,
        kfs::FsError::IsDir => Errno::Eisdir,
        kfs::FsError::NoSpace => Errno::Enospc,
        kfs::FsError::FileTooBig => Errno::Efbig,
        kfs::FsError::BadName => Errno::Einval,
        kfs::FsError::NotEmpty => Errno::Enotempty,
    }
}
