//! The typed metrics surface: [`MetricsSnapshot`] and its sub-structs.
//!
//! Historically the kernel exposed its raw [`ksim::Stats`] counter bag
//! (`kernel.stats().get("copy.copyout_bytes")`) — stringly-typed, easy
//! to typo, and invisible to the compiler when a counter was renamed.
//! The counter bag still exists internally (it is the cheapest possible
//! emission path for the hot code), but the public surface is now
//! [`Kernel::metrics`], which folds the counters, the structured
//! [`ksim::Kstat`] block (splice spans, latency histograms), the buffer
//! cache, the CPU engine, and the network stack into one typed,
//! self-describing snapshot:
//!
//! ```
//! use khw::DiskProfile;
//! use kproc::programs::Scp;
//! use splice::KernelBuilder;
//!
//! let mut k = KernelBuilder::new()
//!     .disk("d0", DiskProfile::ramdisk())
//!     .disk("d1", DiskProfile::ramdisk())
//!     .build();
//! k.setup_file("/d0/data", 16 * 1024, 7);
//! k.spawn(Box::new(Scp::new("/d0/data", "/d1/copy")));
//! let horizon = k.horizon(60);
//! k.run_to_exit(horizon);
//!
//! let m = k.metrics();
//! assert_eq!(m.copy.copyout_bytes, 0); // the point of the paper
//! assert_eq!(m.splice.completed, 1);
//! assert!(m.splice[1].writes_issued > 0); // per-descriptor span
//! ```
//!
//! Snapshots serialize to JSON ([`MetricsSnapshot::to_json`]) with the
//! dependency-free [`ksim::Json`] writer; the bench binaries persist
//! them as `BENCH_*.json`.

use std::ops::Index;

use ksim::{Dur, HistSummary, Json, SimTime, SpliceSpan, SpliceSpans};

use crate::kernel::Kernel;

/// Bytes moved by each copy path (the paper's central accounting:
/// splice exists to drive the first two to zero).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CopyMetrics {
    /// `copyin` traffic: user → kernel (write(2), send(2)).
    pub copyin_bytes: u64,
    /// `copyout` traffic: kernel → user (read(2), recv(2)).
    pub copyout_bytes: u64,
    /// Driver/pseudo-DMA traffic at the device boundary.
    pub driver_bytes: u64,
    /// Cache-to-cache copies (zero when the shared-header path works).
    pub cache_bytes: u64,
    /// Socket-buffer copies on the network path.
    pub net_bytes: u64,
}

/// Block-I/O volume at the device layer.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct IoMetrics {
    /// Bytes read from block devices.
    pub read_bytes: u64,
    /// Bytes written to block devices.
    pub write_bytes: u64,
    /// Sequential read-aheads triggered by `read(2)`.
    pub readaheads: u64,
    /// Block transfers that completed with `B_ERROR` (injected faults).
    pub errors: u64,
}

/// Buffer-cache behavior (kbuf's own counters plus the kernel's
/// truncation bookkeeping).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CacheMetrics {
    /// `bread` served from cache.
    pub hits: u64,
    /// `bread` that went to the device.
    pub misses: u64,
    /// Delayed-write buffers flushed to reclaim space.
    pub reclaim_flushes: u64,
    /// Read-ahead transfers started by the cache.
    pub readaheads: u64,
    /// Valid blocks evicted to recycle their buffer.
    pub evictions: u64,
    /// `biodone` completions routed to `B_CALL` handlers.
    pub bcall_completions: u64,
    /// Cached blocks purged by truncation.
    pub trunc_purged: u64,
    /// Busy blocks detached (orphaned) by truncation.
    pub trunc_detached: u64,
}

/// The splice engine: totals plus per-descriptor lifecycle spans.
///
/// Indexable by descriptor id — `snapshot.splice[desc].reads_issued` —
/// matching how tests reason about a single transfer.
#[derive(Clone, Debug, Default)]
pub struct SpliceMetrics {
    /// Descriptors created.
    pub started: u64,
    /// Transfers completed (SIGIO posted or sleeper woken).
    pub completed: u64,
    /// `splice(2)` calls refused before a descriptor was built (bad fds,
    /// missing endpoint capability, alignment, unconnected socket, …) —
    /// every rejection funnels through the one helper that counts this.
    pub rejected: u64,
    /// Source reads issued across all splices: device block reads plus
    /// stream pulls (datagrams, framebuffer chunks).
    pub reads_issued: u64,
    /// Reads satisfied from the buffer cache.
    pub read_hits: u64,
    /// Read-side retries after a busy buffer or cache exhaustion.
    pub read_backoffs: u64,
    /// Shared-header writes (the §5.2.2 no-copy write side).
    pub shared_writes: u64,
    /// Write-side retries (destination block busy).
    pub write_backoffs: u64,
    /// Device-sink pacing stalls (DAC back-pressure).
    pub dev_backpressure: u64,
    /// Socket-sink send failures.
    pub sock_send_errs: u64,
    /// Append-path retries on transient cache shortage.
    pub append_backoffs: u64,
    /// Append-path bytes dropped for lack of disk space.
    pub append_enospc: u64,
    /// Block retries after a device error (read or write side).
    pub retries: u64,
    /// Splices aborted with a typed errno after retries were exhausted.
    pub aborted: u64,
    /// Per-descriptor lifecycle spans (timestamps, gauges, samples).
    pub spans: SpliceSpans,
}

impl Index<u64> for SpliceMetrics {
    type Output = SpliceSpan;
    fn index(&self, desc: u64) -> &SpliceSpan {
        &self.spans[desc]
    }
}

/// Scheduler events.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SchedMetrics {
    /// Context-switch dispatches.
    pub ctx_switches: u64,
    /// Wakeup preemptions of user-mode chunks.
    pub preemptions: u64,
    /// Lost-wakeup races closed by the retry path.
    pub wakeup_races: u64,
    /// Dispatches that found the CPU re-occupied.
    pub dispatch_races: u64,
    /// Processes that exited.
    pub exits: u64,
}

/// Kernel CPU time by work class (the availability accounting).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CpuMetrics {
    /// Interrupt-class kernel time.
    pub intr_time: Dur,
    /// Softclock-class kernel time run within tick budgets.
    pub soft_time: Dur,
    /// Softclock-class kernel time run in idle cycles.
    pub idle_soft_time: Dur,
    /// Interrupt-class work items admitted.
    pub intr_items: u64,
    /// Soft-class work items admitted within budget.
    pub soft_items: u64,
    /// Soft-class work items pushed past their tick budget.
    pub soft_deferred: u64,
    /// Soft-class work items run during idle.
    pub idle_soft_items: u64,
}

/// Network stack counters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct NetMetrics {
    /// Datagrams sent.
    pub sent: u64,
    /// Datagrams delivered to a socket.
    pub delivered: u64,
    /// Datagrams dropped in the network (all buckets).
    pub dropped: u64,
    /// Drops with no receiver (unbound destination or closed socket).
    pub dropped_no_listener: u64,
    /// Drops at a full receive buffer.
    pub dropped_rcv_full: u64,
    /// Connection requests refused by a full accept backlog.
    pub dropped_backlog: u64,
    /// Datagrams lost to the link model's loss draw.
    pub lost_link: u64,
    /// Sends bounced by send-buffer backpressure (retried, not lost).
    pub snd_blocked: u64,
    /// Delivered-but-unread datagrams thrown away when their socket
    /// closed.
    pub discarded_close: u64,
    /// Connection sockets carved off listeners.
    pub conns_opened: u64,
    /// Payload bytes delivered.
    pub bytes_delivered: u64,
    /// Datagrams dropped at a full receive queue.
    pub rx_dropped: u64,
    /// Deepest pending-connection queue any listener reached.
    pub backlog_peak: u64,
}

/// The resident request-observability pipeline: trace-loss visibility
/// (satellite of the sampled-span work — silent ring truncation is now
/// countable in every bench JSON) plus span, sampling, and SLO-monitor
/// counters, the end-to-end request latency digest, and the tail
/// exemplar linking the p999 bucket back into the trace.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct ObsMetrics {
    /// Trace records emitted over the run (the next sequence number).
    pub trace_emitted: u64,
    /// Trace records lost to ring wrap.
    pub trace_dropped: u64,
    /// Sampler ring samples lost to wrap (0 when the sampler is off).
    pub sampler_dropped: u64,
    /// Requests observed (staged connections that closed).
    pub requests: u64,
    /// Requests that errored or exceeded the SLO latency target.
    pub violations: u64,
    /// Requests that errored.
    pub errors: u64,
    /// SLO burn-rate alerts fired.
    pub alerts: u64,
    /// Peak simultaneously-staged request scratch entries.
    pub staged_peak: u64,
    /// Request spans committed (head-sampled or tail-retained).
    pub spans_committed: u64,
    /// Committed spans kept by the deterministic head-sampling draw.
    pub spans_head_sampled: u64,
    /// Committed spans kept only because they errored or ran over SLO.
    pub spans_tail_retained: u64,
    /// Committed spans evicted from the bounded span ring.
    pub spans_dropped: u64,
    /// End-to-end request latency (every request, sampled or not).
    pub request_latency: HistSummary,
    /// `(conn, trace_seq)` of the exemplar witnessing the p999 bucket.
    pub p999_exemplar: Option<(u32, u64)>,
}

/// Latency distributions (ns), as compact digests.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct LatencyMetrics {
    /// Time a process slept in `biowait` on the read(2) path.
    pub read_wait: HistSummary,
    /// `bread` issue → `biodone`.
    pub bread: HistSummary,
    /// `bwrite` issue → `biodone`.
    pub bwrite: HistSummary,
    /// Splice block round-trip: read issue → write completion.
    pub splice_block: HistSummary,
}

/// One coherent, typed view of everything the kernel measured.
///
/// Built by [`Kernel::metrics`]; cheap enough to take repeatedly (the
/// spans are cloned, everything else is `Copy`).
#[derive(Clone, Debug, Default)]
pub struct MetricsSnapshot {
    /// Simulated time the snapshot was taken.
    pub at: SimTime,
    /// Copy-path bytes.
    pub copy: CopyMetrics,
    /// Device I/O volume.
    pub io: IoMetrics,
    /// Buffer-cache behavior.
    pub cache: CacheMetrics,
    /// Splice engine totals and spans.
    pub splice: SpliceMetrics,
    /// Scheduler events.
    pub sched: SchedMetrics,
    /// Kernel CPU time by class.
    pub cpu: CpuMetrics,
    /// Network counters.
    pub net: NetMetrics,
    /// Latency digests.
    pub latency: LatencyMetrics,
    /// Request observability: trace loss, span sampling, SLO counters.
    pub obs: ObsMetrics,
    /// Buffers flushed by the `update` daemon.
    pub update_flushes: u64,
    /// Harness cold-cache flushes (experiment setup, not workload).
    pub cold_caches: u64,
}

impl MetricsSnapshot {
    /// Serializes the snapshot (including per-splice span summaries,
    /// excluding raw flow samples) as a JSON object.
    pub fn to_json(&self) -> Json {
        let c = &self.copy;
        let copy = Json::obj()
            .with("copyin_bytes", Json::Num(c.copyin_bytes as f64))
            .with("copyout_bytes", Json::Num(c.copyout_bytes as f64))
            .with("driver_bytes", Json::Num(c.driver_bytes as f64))
            .with("cache_bytes", Json::Num(c.cache_bytes as f64))
            .with("net_bytes", Json::Num(c.net_bytes as f64));
        let io = Json::obj()
            .with("read_bytes", Json::Num(self.io.read_bytes as f64))
            .with("write_bytes", Json::Num(self.io.write_bytes as f64))
            .with("readaheads", Json::Num(self.io.readaheads as f64))
            .with("errors", Json::Num(self.io.errors as f64));
        let ca = &self.cache;
        let cache = Json::obj()
            .with("hits", Json::Num(ca.hits as f64))
            .with("misses", Json::Num(ca.misses as f64))
            .with("reclaim_flushes", Json::Num(ca.reclaim_flushes as f64))
            .with("readaheads", Json::Num(ca.readaheads as f64))
            .with("evictions", Json::Num(ca.evictions as f64))
            .with("bcall_completions", Json::Num(ca.bcall_completions as f64))
            .with("trunc_purged", Json::Num(ca.trunc_purged as f64))
            .with("trunc_detached", Json::Num(ca.trunc_detached as f64));
        let s = &self.splice;
        let splice = Json::obj()
            .with("started", Json::Num(s.started as f64))
            .with("completed", Json::Num(s.completed as f64))
            .with("rejected", Json::Num(s.rejected as f64))
            .with("reads_issued", Json::Num(s.reads_issued as f64))
            .with("read_hits", Json::Num(s.read_hits as f64))
            .with("read_backoffs", Json::Num(s.read_backoffs as f64))
            .with("shared_writes", Json::Num(s.shared_writes as f64))
            .with("write_backoffs", Json::Num(s.write_backoffs as f64))
            .with("dev_backpressure", Json::Num(s.dev_backpressure as f64))
            .with("sock_send_errs", Json::Num(s.sock_send_errs as f64))
            .with("append_backoffs", Json::Num(s.append_backoffs as f64))
            .with("append_enospc", Json::Num(s.append_enospc as f64))
            .with("retries", Json::Num(s.retries as f64))
            .with("aborted", Json::Num(s.aborted as f64))
            .with("spans", Json::Arr(s.spans.iter().map(span_json).collect()));
        let sc = &self.sched;
        let sched = Json::obj()
            .with("ctx_switches", Json::Num(sc.ctx_switches as f64))
            .with("preemptions", Json::Num(sc.preemptions as f64))
            .with("wakeup_races", Json::Num(sc.wakeup_races as f64))
            .with("dispatch_races", Json::Num(sc.dispatch_races as f64))
            .with("exits", Json::Num(sc.exits as f64));
        let cp = &self.cpu;
        let cpu = Json::obj()
            .with("intr_ns", Json::Num(cp.intr_time.as_ns() as f64))
            .with("soft_ns", Json::Num(cp.soft_time.as_ns() as f64))
            .with("idle_soft_ns", Json::Num(cp.idle_soft_time.as_ns() as f64))
            .with("intr_items", Json::Num(cp.intr_items as f64))
            .with("soft_items", Json::Num(cp.soft_items as f64))
            .with("soft_deferred", Json::Num(cp.soft_deferred as f64))
            .with("idle_soft_items", Json::Num(cp.idle_soft_items as f64));
        let n = &self.net;
        let net = Json::obj()
            .with("sent", Json::Num(n.sent as f64))
            .with("delivered", Json::Num(n.delivered as f64))
            .with("dropped", Json::Num(n.dropped as f64))
            .with(
                "dropped_no_listener",
                Json::Num(n.dropped_no_listener as f64),
            )
            .with("dropped_rcv_full", Json::Num(n.dropped_rcv_full as f64))
            .with("dropped_backlog", Json::Num(n.dropped_backlog as f64))
            .with("lost_link", Json::Num(n.lost_link as f64))
            .with("snd_blocked", Json::Num(n.snd_blocked as f64))
            .with("discarded_close", Json::Num(n.discarded_close as f64))
            .with("conns_opened", Json::Num(n.conns_opened as f64))
            .with("bytes_delivered", Json::Num(n.bytes_delivered as f64))
            .with("rx_dropped", Json::Num(n.rx_dropped as f64))
            .with("backlog_peak", Json::Num(n.backlog_peak as f64));
        let o = &self.obs;
        let obs = Json::obj()
            .with("trace.emitted", Json::Num(o.trace_emitted as f64))
            .with("trace.dropped", Json::Num(o.trace_dropped as f64))
            .with("sampler.dropped", Json::Num(o.sampler_dropped as f64))
            .with("slo.requests", Json::Num(o.requests as f64))
            .with("slo.violations", Json::Num(o.violations as f64))
            .with("slo.errors", Json::Num(o.errors as f64))
            .with("slo.alerts", Json::Num(o.alerts as f64))
            .with("spans.staged_peak", Json::Num(o.staged_peak as f64))
            .with("spans.committed", Json::Num(o.spans_committed as f64))
            .with("spans.head_sampled", Json::Num(o.spans_head_sampled as f64))
            .with(
                "spans.tail_retained",
                Json::Num(o.spans_tail_retained as f64),
            )
            .with("spans.dropped", Json::Num(o.spans_dropped as f64))
            .with("request_latency", hist_json(&o.request_latency))
            .with(
                "p999_exemplar",
                match o.p999_exemplar {
                    Some((conn, seq)) => Json::obj()
                        .with("conn", Json::Num(conn as f64))
                        .with("trace_seq", Json::Num(seq as f64)),
                    None => Json::Null,
                },
            );
        let latency = Json::obj()
            .with("read_wait", hist_json(&self.latency.read_wait))
            .with("bread", hist_json(&self.latency.bread))
            .with("bwrite", hist_json(&self.latency.bwrite))
            .with("splice_block", hist_json(&self.latency.splice_block));
        Json::obj()
            .with("at_ns", Json::Num(self.at.as_ns() as f64))
            .with("copy", copy)
            .with("io", io)
            .with("cache", cache)
            .with("splice", splice)
            .with("sched", sched)
            .with("cpu", cpu)
            .with("net", net)
            .with("latency", latency)
            .with("obs", obs)
            .with("update_flushes", Json::Num(self.update_flushes as f64))
            .with("cold_caches", Json::Num(self.cold_caches as f64))
    }
}

fn opt_time(t: Option<SimTime>) -> Json {
    match t {
        Some(t) => Json::Num(t.as_ns() as f64),
        None => Json::Null,
    }
}

fn span_json(s: &SpliceSpan) -> Json {
    Json::obj()
        .with("id", Json::Num(s.id as f64))
        .with("created_ns", opt_time(s.created))
        .with("first_read_ns", opt_time(s.first_read))
        .with("first_write_ns", opt_time(s.first_write))
        .with("drained_ns", opt_time(s.drained))
        .with("completed_ns", opt_time(s.completed))
        .with("reads_issued", Json::Num(s.reads_issued as f64))
        .with("read_hits", Json::Num(s.read_hits as f64))
        .with("writes_issued", Json::Num(s.writes_issued as f64))
        .with("blocks_done", Json::Num(s.blocks_done as f64))
        .with("bytes_moved", Json::Num(s.bytes_moved as f64))
        .with("refill_bursts", Json::Num(s.refill_bursts as f64))
        .with("backoffs", Json::Num(s.backoffs as f64))
        .with("max_pending_reads", Json::Num(s.max_pending_reads as f64))
        .with("max_pending_writes", Json::Num(s.max_pending_writes as f64))
        .with("flow_samples", Json::Num(s.samples.len() as f64))
        .with("samples_truncated", Json::Bool(s.samples_truncated))
}

fn hist_json(h: &HistSummary) -> Json {
    h.to_json()
}

impl Kernel {
    /// Takes a typed snapshot of every kernel metric: copy-path bytes,
    /// cache and scheduler behavior, CPU time by class, per-splice
    /// lifecycle spans, and latency digests.
    pub fn metrics(&self) -> MetricsSnapshot {
        let st = &self.stats;
        let cs = self.cache.stats();
        let ns = self.net.stats();
        let cpu = self.cpu.stats();
        MetricsSnapshot {
            at: self.now(),
            copy: CopyMetrics {
                copyin_bytes: st.get("copy.copyin_bytes"),
                copyout_bytes: st.get("copy.copyout_bytes"),
                driver_bytes: st.get("copy.driver_bytes"),
                cache_bytes: st.get("copy.cache_bytes"),
                net_bytes: st.get("copy.net_bytes"),
            },
            io: IoMetrics {
                read_bytes: st.get("io.read_bytes"),
                write_bytes: st.get("io.write_bytes"),
                readaheads: st.get("read.readahead"),
                errors: st.get("io.errors"),
            },
            cache: CacheMetrics {
                hits: cs.hits,
                misses: cs.misses,
                reclaim_flushes: cs.reclaim_flushes,
                readaheads: cs.readaheads,
                evictions: cs.evictions,
                bcall_completions: cs.bcall_completions,
                trunc_purged: st.get("cache.trunc_purged"),
                trunc_detached: st.get("cache.trunc_detached"),
            },
            splice: SpliceMetrics {
                started: st.get("splice.started"),
                completed: st.get("splice.completed"),
                rejected: st.get("splice.rejected"),
                reads_issued: st.get("splice.reads_issued"),
                read_hits: st.get("splice.read_hits"),
                read_backoffs: st.get("splice.read_backoff"),
                shared_writes: st.get("splice.shared_writes"),
                write_backoffs: st.get("splice.write_backoff"),
                dev_backpressure: st.get("splice.dev_backpressure"),
                sock_send_errs: st.get("splice.sock_send_err"),
                append_backoffs: st.get("splice.append_backoff"),
                append_enospc: st.get("splice.append_enospc"),
                retries: st.get("splice.retries"),
                aborted: st.get("splice.aborted"),
                spans: self.kstat.spans.clone(),
            },
            sched: SchedMetrics {
                ctx_switches: st.get("sched.ctx_switches"),
                preemptions: st.get("sched.preemptions"),
                wakeup_races: st.get("sched.wakeup_races"),
                dispatch_races: st.get("sched.dispatch_races"),
                exits: st.get("proc.exits"),
            },
            cpu: CpuMetrics {
                intr_time: cpu.get_dur("cpu.intr"),
                soft_time: cpu.get_dur("cpu.soft"),
                idle_soft_time: cpu.get_dur("cpu.idle_soft"),
                intr_items: cpu.get("cpu.intr_items"),
                soft_items: cpu.get("cpu.soft_items"),
                soft_deferred: cpu.get("cpu.soft_deferred"),
                idle_soft_items: cpu.get("cpu.idle_soft_items"),
            },
            net: NetMetrics {
                sent: ns.sent,
                delivered: ns.delivered,
                dropped: ns.dropped(),
                dropped_no_listener: ns.dropped_no_listener,
                dropped_rcv_full: ns.dropped_rcv_full,
                dropped_backlog: ns.dropped_backlog,
                lost_link: ns.lost_link,
                snd_blocked: ns.snd_blocked,
                discarded_close: ns.discarded_close,
                conns_opened: ns.conns_opened,
                bytes_delivered: ns.bytes_delivered,
                rx_dropped: st.get("net.rx_dropped"),
                backlog_peak: ns.backlog_peak,
            },
            latency: LatencyMetrics {
                read_wait: HistSummary::from(&self.kstat.read_wait),
                bread: HistSummary::from(&self.kstat.bread_latency),
                bwrite: HistSummary::from(&self.kstat.bwrite_latency),
                splice_block: HistSummary::from(&self.kstat.splice_block_latency),
            },
            obs: {
                let oc = self.obs.counters();
                ObsMetrics {
                    trace_emitted: self.trace.emitted(),
                    trace_dropped: self.trace.dropped(),
                    sampler_dropped: self.sampler.as_ref().map_or(0, |s| s.dropped),
                    requests: oc.requests,
                    violations: oc.violations,
                    errors: oc.errors,
                    alerts: oc.alerts,
                    staged_peak: oc.staged_peak,
                    spans_committed: oc.committed,
                    spans_head_sampled: oc.head_sampled,
                    spans_tail_retained: oc.tail_retained,
                    spans_dropped: oc.spans_dropped,
                    request_latency: HistSummary::from(self.obs.latency()),
                    p999_exemplar: self
                        .obs
                        .latency()
                        .exemplar_at(0.999)
                        .map(|e| (e.conn, e.trace_seq)),
                }
            },
            update_flushes: st.get("update.flushed"),
            cold_caches: st.get("harness.cold_cache"),
        }
    }

    /// The structured-statistics block itself (spans and histograms),
    /// for callers that want live access without a snapshot copy.
    pub fn kstat(&self) -> &ksim::Kstat {
        &self.kstat
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_snapshot_serializes_and_roundtrips() {
        let snap = MetricsSnapshot::default();
        let doc = snap.to_json();
        let parsed = Json::parse(&doc.render()).unwrap();
        assert_eq!(parsed, doc);
        assert_eq!(
            parsed
                .get("copy")
                .and_then(|c| c.get("copyin_bytes"))
                .and_then(Json::as_u64),
            Some(0)
        );
        assert_eq!(
            parsed
                .get("splice")
                .and_then(|s| s.get("spans"))
                .and_then(Json::as_arr)
                .map(<[Json]>::len),
            Some(0)
        );
        let obs = parsed.get("obs").expect("obs section");
        assert_eq!(
            obs.get("trace.dropped").and_then(Json::as_u64),
            Some(0),
            "trace loss must be countable even on an empty snapshot"
        );
        assert_eq!(obs.get("sampler.dropped").and_then(Json::as_u64), Some(0));
        assert_eq!(obs.get("p999_exemplar"), Some(&Json::Null));
        assert!(obs.get("request_latency").is_some());
    }

    #[test]
    fn populated_obs_section_carries_exemplar() {
        let mut snap = MetricsSnapshot::default();
        snap.obs.p999_exemplar = Some((7, 4242));
        let doc = snap.to_json();
        let parsed = Json::parse(&doc.render()).unwrap();
        let ex = parsed
            .get("obs")
            .and_then(|o| o.get("p999_exemplar"))
            .expect("exemplar object");
        assert_eq!(ex.get("conn").and_then(Json::as_u64), Some(7));
        assert_eq!(ex.get("trace_seq").and_then(Json::as_u64), Some(4242));
    }
}
