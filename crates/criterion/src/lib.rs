//! A self-contained, offline stand-in for the `criterion` crate.
//!
//! The workspace must build with zero network access, so the registry
//! `criterion` cannot be fetched. This shim keeps the same harness
//! surface the benches use (`criterion_group!` / `criterion_main!`,
//! `Criterion::bench_function`, `benchmark_group`, `Bencher::iter` /
//! `iter_batched`, `BatchSize`, `black_box`) and reports simple
//! wall-clock statistics (mean/min over a fixed number of samples)
//! instead of criterion's full statistical machinery.

use std::time::Instant;

pub use std::hint::black_box;

/// How `iter_batched` amortizes setup; accepted for API compatibility.
#[derive(Clone, Copy, Debug)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
}

/// Per-benchmark measurement driver.
pub struct Bencher {
    samples: Vec<f64>,
    iters_per_sample: u64,
}

impl Bencher {
    fn new(iters_per_sample: u64) -> Bencher {
        Bencher {
            samples: Vec::new(),
            iters_per_sample,
        }
    }

    /// Times `routine`, called in a loop per sample.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let iters = self.iters_per_sample.max(1);
        let start = Instant::now();
        for _ in 0..iters {
            black_box(routine());
        }
        let total = start.elapsed().as_secs_f64();
        self.samples.push(total / iters as f64);
    }

    /// Times `routine` over inputs produced (untimed) by `setup`.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        let iters = self.iters_per_sample.max(1);
        let mut total = 0.0;
        for _ in 0..iters {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            total += start.elapsed().as_secs_f64();
        }
        self.samples.push(total / iters as f64);
    }
}

fn report(name: &str, samples: &[f64]) {
    if samples.is_empty() {
        println!("{name:<40} no samples");
        return;
    }
    let mean = samples.iter().sum::<f64>() / samples.len() as f64;
    let min = samples.iter().copied().fold(f64::INFINITY, f64::min);
    println!(
        "{name:<40} mean {:>12} min {:>12} ({} samples)",
        fmt_time(mean),
        fmt_time(min),
        samples.len()
    );
}

fn fmt_time(secs: f64) -> String {
    if secs >= 1.0 {
        format!("{secs:.3} s")
    } else if secs >= 1e-3 {
        format!("{:.3} ms", secs * 1e3)
    } else if secs >= 1e-6 {
        format!("{:.3} µs", secs * 1e6)
    } else {
        format!("{:.1} ns", secs * 1e9)
    }
}

/// Top-level harness handle, mirroring `criterion::Criterion`.
pub struct Criterion {
    sample_count: usize,
}

impl Default for Criterion {
    fn default() -> Criterion {
        Criterion { sample_count: 10 }
    }
}

impl Criterion {
    /// Runs `f` against a fresh [`Bencher`] and prints a summary line.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, f: F) -> &mut Criterion {
        run_bench(name, self.sample_count, f);
        self
    }

    /// Opens a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.to_string(),
            sample_count: self.sample_count,
            _parent: self,
        }
    }
}

/// A named collection of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_count: usize,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Overrides the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_count = n.max(1);
        self
    }

    /// Runs one benchmark inside the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, f: F) -> &mut Self {
        run_bench(&format!("{}/{}", self.name, name), self.sample_count, f);
        self
    }

    /// Ends the group (no-op; kept for API compatibility).
    pub fn finish(self) {}
}

fn run_bench<F: FnMut(&mut Bencher)>(name: &str, sample_count: usize, mut f: F) {
    // Warm-up pass, then timed samples.
    let mut warm = Bencher::new(1);
    f(&mut warm);
    let mut b = Bencher::new(1);
    for _ in 0..sample_count {
        f(&mut b);
    }
    report(name, &b.samples);
}

/// Collects benchmark functions into a single runnable group.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Generates `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_routine() {
        let mut c = Criterion::default();
        let mut count = 0u32;
        c.bench_function("smoke", |b| b.iter(|| count += 1));
        assert!(count > 0);
    }

    #[test]
    fn group_runs_batched() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("g");
        g.sample_size(3);
        let mut total = 0usize;
        g.bench_function("batched", |b| {
            b.iter_batched(|| vec![1u8; 8], |v| total += v.len(), BatchSize::SmallInput)
        });
        g.finish();
        assert!(total >= 8);
    }
}
