//! In-core inodes (the Ultrix "gnode") and their block maps.
//!
//! An in-core inode carries the full logical→physical block map, built
//! from the on-disk direct/indirect pointers at load time. `bmap` is then
//! a table lookup — which is precisely the property the splice descriptor
//! relies on when it snapshots "the entire list of all physical block
//! numbers comprising the source file" (§5.2).

use crate::layout::{RawInode, NDADDR};

/// Inode number. 0 is never a valid inode; the root directory is inode 1.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, PartialOrd, Ord)]
pub struct Ino(pub u32);

/// What an inode is.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum FileKind {
    /// Regular file.
    File,
    /// Directory.
    Dir,
}

impl FileKind {
    /// On-disk encoding.
    pub fn to_raw(self) -> u16 {
        match self {
            FileKind::File => 1,
            FileKind::Dir => 2,
        }
    }

    /// From on-disk encoding; `None` for a free slot or garbage.
    pub fn from_raw(v: u16) -> Option<FileKind> {
        match v {
            1 => Some(FileKind::File),
            2 => Some(FileKind::Dir),
            _ => None,
        }
    }
}

/// An in-core inode with a fully materialised block map.
#[derive(Clone, Debug)]
pub struct Inode {
    /// Inode number.
    pub ino: Ino,
    /// File or directory.
    pub kind: FileKind,
    /// Hard link count.
    pub nlink: u16,
    /// Size in bytes.
    pub size: u64,
    /// Logical block index → physical block (None = hole).
    pub map: Vec<Option<u64>>,
    /// Physical block of the single-indirect pointer block, if allocated.
    pub indirect: Option<u64>,
    /// Physical block of the double-indirect pointer block, if allocated.
    pub dindirect: Option<u64>,
    /// Level-1 pointer blocks under the double-indirect block
    /// (`dind_l1[i]` covers logical blocks `NDADDR + p + i*p ..`).
    pub dind_l1: Vec<Option<u64>>,
    /// Metadata changed since last writeback.
    pub dirty: bool,
}

impl Inode {
    /// A fresh empty inode.
    pub fn new(ino: Ino, kind: FileKind) -> Inode {
        Inode {
            ino,
            kind,
            nlink: 1,
            size: 0,
            map: Vec::new(),
            indirect: None,
            dindirect: None,
            dind_l1: Vec::new(),
            dirty: true,
        }
    }

    /// Physical block for logical block `lblk`, if mapped.
    pub fn bmap(&self, lblk: u64) -> Option<u64> {
        self.map.get(lblk as usize).copied().flatten()
    }

    /// Number of mapped (non-hole) blocks.
    pub fn blocks_mapped(&self) -> u64 {
        self.map.iter().filter(|b| b.is_some()).count() as u64
    }

    /// Installs a mapping (grows the map with holes as needed).
    pub fn set_map(&mut self, lblk: u64, pblk: u64) {
        let idx = lblk as usize;
        if idx >= self.map.len() {
            self.map.resize(idx + 1, None);
        }
        assert!(self.map[idx].is_none(), "remap of mapped block {lblk}");
        self.map[idx] = Some(pblk);
        self.dirty = true;
    }

    /// Builds the direct-pointer part of the on-disk image. The indirect
    /// pointer *blocks* are materialised by the filesystem at sync time
    /// (they live in data blocks); this fills in the inode fields.
    pub fn to_raw(&self) -> RawInode {
        let mut raw = RawInode::free();
        raw.kind = self.kind.to_raw();
        raw.nlink = self.nlink;
        raw.size = self.size;
        for i in 0..NDADDR.min(self.map.len()) {
            raw.direct[i] = self.map[i].unwrap_or(0);
        }
        raw.indirect = self.indirect.unwrap_or(0);
        raw.dindirect = self.dindirect.unwrap_or(0);
        raw
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn filekind_roundtrip() {
        assert_eq!(
            FileKind::from_raw(FileKind::File.to_raw()),
            Some(FileKind::File)
        );
        assert_eq!(
            FileKind::from_raw(FileKind::Dir.to_raw()),
            Some(FileKind::Dir)
        );
        assert_eq!(FileKind::from_raw(0), None);
        assert_eq!(FileKind::from_raw(99), None);
    }

    #[test]
    fn bmap_lookup_with_holes() {
        let mut ino = Inode::new(Ino(2), FileKind::File);
        ino.set_map(0, 100);
        ino.set_map(5, 105);
        assert_eq!(ino.bmap(0), Some(100));
        assert_eq!(ino.bmap(1), None, "hole");
        assert_eq!(ino.bmap(5), Some(105));
        assert_eq!(ino.bmap(99), None, "past end");
        assert_eq!(ino.blocks_mapped(), 2);
    }

    #[test]
    #[should_panic(expected = "remap")]
    fn remap_rejected() {
        let mut ino = Inode::new(Ino(2), FileKind::File);
        ino.set_map(0, 100);
        ino.set_map(0, 101);
    }

    #[test]
    fn to_raw_covers_direct_range() {
        let mut ino = Inode::new(Ino(2), FileKind::File);
        for i in 0..14u64 {
            ino.set_map(i, 100 + i);
        }
        ino.indirect = Some(500);
        let raw = ino.to_raw();
        assert_eq!(raw.direct[0], 100);
        assert_eq!(raw.direct[11], 111);
        assert_eq!(raw.indirect, 500);
        assert_eq!(raw.dindirect, 0);
    }
}
