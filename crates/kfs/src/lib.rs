#![warn(missing_docs)]

//! A 4.2BSD-style local filesystem (FFS-lite).
//!
//! The splice implementation needs exactly what this crate provides (§5.1):
//! a filesystem whose `bmap()` can resolve every logical block of a file to
//! a physical block number up front, a block allocator that can be driven
//! by a "special version of bmap … which avoids delayed-writes of freshly
//! allocated, zero-filled blocks", and ordinary file metadata (the gnode).
//!
//! On-disk layout (all little-endian, block numbers in units of the
//! filesystem block size):
//!
//! ```text
//! block 0              superblock
//! blocks 1..           inode table (fixed count, 128 bytes per inode)
//! blocks ..            free-block bitmap (1 bit per block)
//! blocks data_start..  data blocks (files, directories, indirect blocks)
//! ```
//!
//! Inodes address 12 direct blocks, one single-indirect and one
//! double-indirect block, like the classic FFS inode.
//!
//! # Division of labour with the kernel
//!
//! *Data* blocks move through the buffer cache and the disk model with full
//! timing — that is the traffic the paper measures. *Metadata* (inodes,
//! bitmap, directories, indirect blocks) is kept in core once loaded and
//! written back on `sync`, with each operation reporting the device bytes
//! it implies ([`FsIo`]) so the kernel can charge time for them. This
//! mirrors how FFS kept cylinder-group summaries and active inodes in core,
//! and keeps metadata a second-order cost as it is in the paper's
//! experiments.

pub mod alloc;
pub mod dir;
pub mod fs;
pub mod fsck;
pub mod inode;
pub mod layout;

pub use fs::{Fs, FsError, FsIo, FsResult};
pub use fsck::{fsck, FsckReport};
pub use inode::{FileKind, Ino};
pub use layout::Superblock;
