//! Free-block bitmap allocator.
//!
//! A rotor-based first-fit allocator: allocation scans forward from the
//! last allocation point, so blocks of a file written sequentially come out
//! (mostly) physically contiguous — which is what makes the drive-level
//! read-ahead cache effective, exactly as FFS's cylinder-group allocator
//! did for the paper's workloads.

/// In-core free-block bitmap (one bit per filesystem block, set = used).
#[derive(Clone)]
pub struct Bitmap {
    bits: Vec<u8>,
    nblocks: u64,
    rotor: u64,
    used: u64,
}

impl Bitmap {
    /// A bitmap of `nblocks` blocks, all free.
    pub fn new(nblocks: u64) -> Bitmap {
        Bitmap {
            bits: vec![0u8; (nblocks as usize).div_ceil(8)],
            nblocks,
            rotor: 0,
            used: 0,
        }
    }

    /// Rebuilds from on-disk bytes.
    pub fn from_bytes(nblocks: u64, bytes: &[u8]) -> Bitmap {
        assert!(bytes.len() >= (nblocks as usize).div_ceil(8));
        let bits = bytes[..(nblocks as usize).div_ceil(8)].to_vec();
        let mut used = 0;
        for b in 0..nblocks {
            if bits[(b / 8) as usize] & (1 << (b % 8)) != 0 {
                used += 1;
            }
        }
        Bitmap {
            bits,
            nblocks,
            rotor: 0,
            used,
        }
    }

    /// Serialises for writing back to disk.
    pub fn to_bytes(&self) -> &[u8] {
        &self.bits
    }

    /// Number of blocks the bitmap covers.
    pub fn nblocks(&self) -> u64 {
        self.nblocks
    }

    /// Number of blocks currently marked used.
    pub fn used(&self) -> u64 {
        self.used
    }

    /// Number of free blocks.
    pub fn free(&self) -> u64 {
        self.nblocks - self.used
    }

    /// True if `block` is marked used.
    pub fn is_used(&self, block: u64) -> bool {
        assert!(block < self.nblocks, "block {block} out of range");
        self.bits[(block / 8) as usize] & (1 << (block % 8)) != 0
    }

    /// Marks `block` used (mkfs reserving metadata regions).
    ///
    /// # Panics
    ///
    /// Panics if the block is already used.
    pub fn reserve(&mut self, block: u64) {
        assert!(!self.is_used(block), "double reserve of block {block}");
        self.bits[(block / 8) as usize] |= 1 << (block % 8);
        self.used += 1;
    }

    /// Allocates a free block, preferring `near` (or the rotor) and
    /// scanning forward with wraparound. Returns `None` when full.
    pub fn alloc(&mut self, near: Option<u64>) -> Option<u64> {
        if self.used == self.nblocks {
            return None;
        }
        let start = near.unwrap_or(self.rotor).min(self.nblocks - 1);
        let mut b = start;
        loop {
            if !self.is_used(b) {
                self.reserve(b);
                self.rotor = (b + 1) % self.nblocks;
                return Some(b);
            }
            b = (b + 1) % self.nblocks;
            if b == start {
                return None;
            }
        }
    }

    /// Frees a used block.
    ///
    /// # Panics
    ///
    /// Panics if the block is already free (double free).
    pub fn dealloc(&mut self, block: u64) {
        assert!(self.is_used(block), "double free of block {block}");
        self.bits[(block / 8) as usize] &= !(1 << (block % 8));
        self.used -= 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_prefers_contiguity() {
        let mut bm = Bitmap::new(64);
        let a = bm.alloc(None).unwrap();
        let b = bm.alloc(None).unwrap();
        let c = bm.alloc(None).unwrap();
        assert_eq!(b, a + 1);
        assert_eq!(c, b + 1);
    }

    #[test]
    fn alloc_near_hint() {
        let mut bm = Bitmap::new(64);
        let x = bm.alloc(Some(40)).unwrap();
        assert_eq!(x, 40);
        let y = bm.alloc(Some(40)).unwrap();
        assert_eq!(y, 41, "hint occupied, next free follows");
    }

    #[test]
    fn wraparound_scan() {
        let mut bm = Bitmap::new(8);
        for _ in 0..7 {
            bm.alloc(Some(1)).unwrap();
        }
        // Only block 0 left; scan from 1 must wrap.
        assert_eq!(bm.alloc(Some(1)), Some(0));
        assert_eq!(bm.alloc(None), None);
    }

    #[test]
    fn dealloc_reuses() {
        let mut bm = Bitmap::new(4);
        let a = bm.alloc(None).unwrap();
        bm.dealloc(a);
        assert_eq!(bm.free(), 4);
        assert!(!bm.is_used(a));
    }

    #[test]
    #[should_panic(expected = "double free")]
    fn double_free_panics() {
        let mut bm = Bitmap::new(4);
        let a = bm.alloc(None).unwrap();
        bm.dealloc(a);
        bm.dealloc(a);
    }

    #[test]
    #[should_panic(expected = "double reserve")]
    fn double_reserve_panics() {
        let mut bm = Bitmap::new(4);
        bm.reserve(2);
        bm.reserve(2);
    }

    #[test]
    fn roundtrip_bytes() {
        let mut bm = Bitmap::new(100);
        for i in [0u64, 7, 8, 63, 99] {
            bm.reserve(i);
        }
        let bm2 = Bitmap::from_bytes(100, bm.to_bytes());
        assert_eq!(bm2.used(), 5);
        for i in [0u64, 7, 8, 63, 99] {
            assert!(bm2.is_used(i));
        }
        assert!(!bm2.is_used(1));
    }
}
