//! The mounted filesystem: namespace, inode table, allocator, `bmap`.
//!
//! See the crate docs for the metadata-in-core design. Every operation
//! that implies device traffic reports it in an [`FsIo`] so the kernel can
//! charge time; data-block traffic itself is *not* initiated here — the
//! kernel moves data blocks through the buffer cache using the physical
//! block numbers `bmap`/`bmap_alloc` return.

use std::collections::{BTreeMap, HashSet};

use khw::SparseStore;

use crate::alloc::Bitmap;
use crate::dir::DirContents;
use crate::inode::{FileKind, Ino, Inode};
use crate::layout::{RawInode, Superblock, INODE_SIZE, NDADDR};

/// Filesystem errors surfaced to the syscall layer.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum FsError {
    /// Path component does not exist.
    NotFound,
    /// Target name already exists.
    Exists,
    /// A non-final path component is not a directory.
    NotDir,
    /// Operation needs a file but found a directory.
    IsDir,
    /// No free data blocks (or inodes).
    NoSpace,
    /// File would exceed the double-indirect limit.
    FileTooBig,
    /// Empty name, embedded '/', or otherwise invalid.
    BadName,
    /// Directory still has entries.
    NotEmpty,
}

/// Result alias for filesystem operations.
pub type FsResult<T> = Result<T, FsError>;

/// Device traffic implied by a metadata operation, for the kernel to
/// charge.
#[derive(Clone, Copy, Default, Debug, PartialEq, Eq)]
pub struct FsIo {
    /// Bytes read from the device.
    pub read: u64,
    /// Bytes written to the device.
    pub written: u64,
    /// Discrete device requests implied.
    pub ops: u32,
}

impl FsIo {
    /// Accumulates another operation's traffic.
    pub fn add(&mut self, other: FsIo) {
        self.read += other.read;
        self.written += other.written;
        self.ops += other.ops;
    }
}

/// A mounted filesystem instance.
pub struct Fs {
    sb: Superblock,
    bitmap: Bitmap,
    inodes: BTreeMap<Ino, Inode>,
    dirs: BTreeMap<Ino, DirContents>,
    dead_inodes: HashSet<Ino>,
    dirty_dirs: HashSet<Ino>,
    bitmap_dirty: bool,
}

impl Fs {
    // ----- construction ----------------------------------------------------

    /// Formats `store` and returns the freshly mounted filesystem.
    pub fn mkfs(store: &mut SparseStore, block_size: u32, ninodes: u32) -> Fs {
        let sb = Superblock::for_device(store.len(), block_size, ninodes);
        let mut bitmap = Bitmap::new(sb.total_blocks);
        for b in 0..sb.data_start {
            bitmap.reserve(b);
        }
        let mut fs = Fs {
            sb,
            bitmap,
            inodes: BTreeMap::new(),
            dirs: BTreeMap::new(),
            dead_inodes: HashSet::new(),
            dirty_dirs: HashSet::new(),
            bitmap_dirty: true,
        };
        // Root directory.
        let root = Ino(sb.root_ino);
        let mut ino = Inode::new(root, FileKind::Dir);
        ino.nlink = 2;
        fs.inodes.insert(root, ino);
        fs.dirs.insert(root, DirContents::new());
        fs.dirty_dirs.insert(root);
        // Zero the inode table region so unused slots parse as free.
        let itab_bytes = sb.itab_blocks * block_size as u64;
        store.write(
            sb.itab_start * block_size as u64,
            &vec![0u8; itab_bytes as usize],
        );
        store.write(0, &sb.encode());
        fs.sync(store);
        fs
    }

    /// Mounts an existing filesystem, loading all metadata into core.
    /// Returns `None` if the superblock is unrecognisable.
    pub fn mount(store: &SparseStore) -> Option<(Fs, FsIo)> {
        let mut io = FsIo::default();
        let sb_bytes = store.read_vec(0, 64);
        io.read += 64;
        io.ops += 1;
        let sb = Superblock::decode(&sb_bytes)?;
        let bs = sb.block_size as u64;

        // Bitmap.
        let bitmap_bytes = store.read_vec(sb.bitmap_start * bs, (sb.bitmap_blocks * bs) as usize);
        io.read += sb.bitmap_blocks * bs;
        io.ops += 1;
        let bitmap = Bitmap::from_bytes(sb.total_blocks, &bitmap_bytes);

        let mut fs = Fs {
            sb,
            bitmap,
            inodes: BTreeMap::new(),
            dirs: BTreeMap::new(),
            dead_inodes: HashSet::new(),
            dirty_dirs: HashSet::new(),
            bitmap_dirty: false,
        };

        // Inode table (and indirect pointer blocks).
        for i in 1..sb.ninodes {
            let raw_bytes = store.read_vec(sb.inode_offset(i), INODE_SIZE);
            let raw = RawInode::decode(&raw_bytes);
            let Some(kind) = FileKind::from_raw(raw.kind) else {
                continue;
            };
            io.read += INODE_SIZE as u64;
            let mut inode = Inode::new(Ino(i), kind);
            inode.nlink = raw.nlink;
            inode.size = raw.size;
            inode.dirty = false;
            for (l, &p) in raw.direct.iter().enumerate() {
                if p != 0 {
                    inode.set_map(l as u64, p);
                }
            }
            let p = sb.ptrs_per_block();
            if raw.indirect != 0 {
                inode.indirect = Some(raw.indirect);
                let ptrs = read_ptr_block(store, &sb, raw.indirect);
                io.read += bs;
                io.ops += 1;
                for (j, &pb) in ptrs.iter().enumerate() {
                    if pb != 0 {
                        inode.set_map(NDADDR as u64 + j as u64, pb);
                    }
                }
            }
            if raw.dindirect != 0 {
                inode.dindirect = Some(raw.dindirect);
                let l1ptrs = read_ptr_block(store, &sb, raw.dindirect);
                io.read += bs;
                io.ops += 1;
                for (k, &l1) in l1ptrs.iter().enumerate() {
                    if k >= inode.dind_l1.len() {
                        inode.dind_l1.resize(k + 1, None);
                    }
                    if l1 == 0 {
                        continue;
                    }
                    inode.dind_l1[k] = Some(l1);
                    let ptrs = read_ptr_block(store, &sb, l1);
                    io.read += bs;
                    io.ops += 1;
                    let base = NDADDR as u64 + p + k as u64 * p;
                    for (j, &pb) in ptrs.iter().enumerate() {
                        if pb != 0 {
                            inode.set_map(base + j as u64, pb);
                        }
                    }
                }
            }
            inode.dirty = false;
            fs.inodes.insert(Ino(i), inode);
        }

        // Directory contents.
        let dir_inos: Vec<Ino> = fs
            .inodes
            .values()
            .filter(|i| i.kind == FileKind::Dir)
            .map(|i| i.ino)
            .collect();
        for ino in dir_inos {
            let data = fs.read_file_raw(store, ino);
            io.read += data.len() as u64;
            io.ops += 1;
            let contents = DirContents::decode(&data)?;
            fs.dirs.insert(ino, contents);
        }

        Some((fs, io))
    }

    // ----- introspection ---------------------------------------------------

    /// The superblock.
    pub fn superblock(&self) -> &Superblock {
        &self.sb
    }

    /// Filesystem block size in bytes.
    pub fn block_size(&self) -> usize {
        self.sb.block_size as usize
    }

    /// Sectors (512-byte units) per filesystem block.
    pub fn sectors_per_block(&self) -> u64 {
        self.sb.block_size as u64 / khw::SECTOR_SIZE as u64
    }

    /// Converts a physical filesystem block number to a device sector.
    pub fn block_to_sector(&self, pblk: u64) -> u64 {
        pblk * self.sectors_per_block()
    }

    /// Free data blocks remaining.
    pub fn free_blocks(&self) -> u64 {
        self.bitmap.free()
    }

    /// File kind and size, if the inode exists.
    pub fn stat(&self, ino: Ino) -> Option<(FileKind, u64)> {
        self.inodes.get(&ino).map(|i| (i.kind, i.size))
    }

    /// File size in bytes.
    ///
    /// # Panics
    ///
    /// Panics if the inode does not exist.
    pub fn size(&self, ino: Ino) -> u64 {
        self.inodes[&ino].size
    }

    /// Number of blocks needed to hold `size` bytes.
    pub fn blocks_for(&self, size: u64) -> u64 {
        size.div_ceil(self.sb.block_size as u64)
    }

    // ----- namespace -------------------------------------------------------

    fn split_path(path: &str) -> FsResult<Vec<&str>> {
        if !path.starts_with('/') {
            return Err(FsError::BadName);
        }
        let comps: Vec<&str> = path.split('/').filter(|c| !c.is_empty()).collect();
        if comps
            .iter()
            .any(|c| c.len() > 255 || *c == "." || *c == "..")
        {
            return Err(FsError::BadName);
        }
        Ok(comps)
    }

    fn walk_parent(&self, comps: &[&str]) -> FsResult<Ino> {
        let mut cur = Ino(self.sb.root_ino);
        for c in comps {
            let dir = self.dirs.get(&cur).ok_or(FsError::NotDir)?;
            cur = dir.get(c).ok_or(FsError::NotFound)?;
            if self.inodes[&cur].kind != FileKind::Dir {
                return Err(FsError::NotDir);
            }
        }
        Ok(cur)
    }

    /// Resolves an absolute path to an inode.
    pub fn lookup(&self, path: &str) -> FsResult<Ino> {
        let comps = Self::split_path(path)?;
        if comps.is_empty() {
            return Ok(Ino(self.sb.root_ino));
        }
        let parent = self.walk_parent(&comps[..comps.len() - 1])?;
        let dir = self.dirs.get(&parent).ok_or(FsError::NotDir)?;
        dir.get(comps[comps.len() - 1]).ok_or(FsError::NotFound)
    }

    fn alloc_ino(&mut self) -> FsResult<Ino> {
        for i in 1..self.sb.ninodes {
            let ino = Ino(i);
            if !self.inodes.contains_key(&ino) {
                self.dead_inodes.remove(&ino);
                return Ok(ino);
            }
        }
        Err(FsError::NoSpace)
    }

    fn create_node(&mut self, path: &str, kind: FileKind) -> FsResult<Ino> {
        let comps = Self::split_path(path)?;
        let Some((&name, parents)) = comps.split_last() else {
            return Err(FsError::Exists); // root already exists
        };
        let parent = self.walk_parent(parents)?;
        if self.dirs[&parent].get(name).is_some() {
            return Err(FsError::Exists);
        }
        let ino = self.alloc_ino()?;
        let node = Inode::new(ino, kind);
        self.inodes.insert(ino, node);
        if kind == FileKind::Dir {
            self.dirs.insert(ino, DirContents::new());
            self.dirty_dirs.insert(ino);
        }
        self.dirs.get_mut(&parent).unwrap().insert(name, ino);
        self.dirty_dirs.insert(parent);
        Ok(ino)
    }

    /// Creates an empty regular file.
    pub fn create(&mut self, path: &str) -> FsResult<Ino> {
        self.create_node(path, FileKind::File)
    }

    /// Creates an empty directory.
    pub fn mkdir(&mut self, path: &str) -> FsResult<Ino> {
        self.create_node(path, FileKind::Dir)
    }

    /// Adds a hard link: `new` becomes another name for the file at
    /// `existing`. Directories cannot be linked.
    pub fn link(&mut self, existing: &str, new: &str) -> FsResult<()> {
        let ino = self.lookup(existing)?;
        if self.inodes[&ino].kind == FileKind::Dir {
            return Err(FsError::IsDir);
        }
        let comps = Self::split_path(new)?;
        let Some((&name, parents)) = comps.split_last() else {
            return Err(FsError::Exists);
        };
        let parent = self.walk_parent(parents)?;
        if self.dirs[&parent].get(name).is_some() {
            return Err(FsError::Exists);
        }
        self.dirs.get_mut(&parent).unwrap().insert(name, ino);
        self.dirty_dirs.insert(parent);
        let inode = self.inodes.get_mut(&ino).unwrap();
        inode.nlink += 1;
        inode.dirty = true;
        Ok(())
    }

    /// Removes a name. The file's blocks are freed only when its last
    /// link goes (empty directories are removed directly).
    pub fn unlink(&mut self, path: &str) -> FsResult<()> {
        let comps = Self::split_path(path)?;
        let Some((&name, parents)) = comps.split_last() else {
            return Err(FsError::IsDir);
        };
        let parent = self.walk_parent(parents)?;
        let ino = self.dirs[&parent].get(name).ok_or(FsError::NotFound)?;
        if self.inodes[&ino].kind == FileKind::Dir && !self.dirs[&ino].is_empty() {
            return Err(FsError::NotEmpty);
        }
        self.dirs.get_mut(&parent).unwrap().remove(name);
        self.dirty_dirs.insert(parent);
        {
            let inode = self.inodes.get_mut(&ino).unwrap();
            inode.dirty = true;
            if inode.kind == FileKind::File && inode.nlink > 1 {
                // Other names remain; just drop this reference.
                inode.nlink -= 1;
                return Ok(());
            }
        }
        self.truncate(ino).expect("inode exists");
        self.inodes.remove(&ino);
        self.dirs.remove(&ino);
        self.dirty_dirs.remove(&ino);
        self.dead_inodes.insert(ino);
        Ok(())
    }

    // ----- block mapping ---------------------------------------------------

    /// `bmap()`: logical block → physical block, `None` for holes/past-EOF.
    pub fn bmap(&self, ino: Ino, lblk: u64) -> Option<u64> {
        self.inodes.get(&ino)?.bmap(lblk)
    }

    /// Snapshot of the whole block map — what the splice descriptor stores
    /// ("the entire list of all physical block numbers comprising the
    /// source file is determined by successive calls to bmap()", §5.2).
    pub fn block_map(&self, ino: Ino) -> Vec<Option<u64>> {
        let inode = &self.inodes[&ino];
        let n = self.blocks_for(inode.size) as usize;
        (0..n as u64).map(|l| inode.bmap(l)).collect()
    }

    /// The allocating `bmap` used by write paths and by the splice
    /// destination mapping (§5.2's "special version of bmap() … which
    /// avoids delayed-writes of freshly allocated, zero-filled blocks"):
    /// returns the physical block for `lblk`, allocating one near the
    /// file's previous block if unmapped. The fresh block is *not*
    /// zero-filled through the cache — the caller promises to overwrite it
    /// entirely.
    pub fn bmap_alloc(&mut self, ino: Ino, lblk: u64) -> FsResult<u64> {
        let p = self.sb.ptrs_per_block();
        if lblk >= self.sb.max_file_blocks() {
            return Err(FsError::FileTooBig);
        }
        let inode = self.inodes.get_mut(&ino).ok_or(FsError::NotFound)?;
        if let Some(pb) = inode.bmap(lblk) {
            return Ok(pb);
        }
        // Allocate near the previous mapped block for contiguity.
        let near = lblk
            .checked_sub(1)
            .and_then(|l| inode.bmap(l))
            .map(|pb| pb + 1)
            .or(Some(self.sb.data_start));
        let pb = self.bitmap.alloc(near).ok_or(FsError::NoSpace)?;
        self.bitmap_dirty = true;
        let inode = self.inodes.get_mut(&ino).unwrap();
        inode.set_map(lblk, pb);

        // Make sure the pointer-block spine exists for this range. Spine
        // slots are identified first, then allocated, to keep the borrows
        // of `self.inodes` and `self.bitmap` disjoint.
        #[derive(Clone, Copy)]
        enum Spine {
            Indirect,
            Dindirect,
            DindL1(usize),
        }
        let mut needed: Vec<Spine> = Vec::new();
        if lblk >= NDADDR as u64 {
            if lblk < NDADDR as u64 + p {
                if inode.indirect.is_none() {
                    needed.push(Spine::Indirect);
                }
            } else {
                let k = ((lblk - NDADDR as u64 - p) / p) as usize;
                if inode.dindirect.is_none() {
                    needed.push(Spine::Dindirect);
                }
                if k >= inode.dind_l1.len() {
                    inode.dind_l1.resize(k + 1, None);
                }
                if inode.dind_l1[k].is_none() {
                    needed.push(Spine::DindL1(k));
                }
            }
        }
        for slot in needed {
            let blk = self.bitmap.alloc(None).ok_or(FsError::NoSpace)?;
            let inode = self.inodes.get_mut(&ino).unwrap();
            match slot {
                Spine::Indirect => inode.indirect = Some(blk),
                Spine::Dindirect => inode.dindirect = Some(blk),
                Spine::DindL1(k) => inode.dind_l1[k] = Some(blk),
            }
        }
        Ok(pb)
    }

    /// Sets the file size (write paths extend; truncation frees nothing —
    /// use [`Fs::truncate`] for that).
    pub fn set_size(&mut self, ino: Ino, size: u64) {
        let inode = self.inodes.get_mut(&ino).expect("inode exists");
        inode.size = size;
        inode.dirty = true;
    }

    /// Truncates a file to zero length, freeing all its blocks.
    pub fn truncate(&mut self, ino: Ino) -> FsResult<()> {
        let inode = self.inodes.get_mut(&ino).ok_or(FsError::NotFound)?;
        let blocks: Vec<u64> = inode.map.iter().flatten().copied().collect();
        let spine: Vec<u64> = inode
            .indirect
            .iter()
            .chain(inode.dindirect.iter())
            .chain(inode.dind_l1.iter().flatten())
            .copied()
            .collect();
        inode.map.clear();
        inode.indirect = None;
        inode.dindirect = None;
        inode.dind_l1.clear();
        inode.size = 0;
        inode.dirty = true;
        for b in blocks.into_iter().chain(spine) {
            self.bitmap.dealloc(b);
        }
        self.bitmap_dirty = true;
        Ok(())
    }

    // ----- metadata writeback ----------------------------------------------

    /// Writes back one inode (and its pointer blocks). The fsync path.
    pub fn sync_inode(&mut self, store: &mut SparseStore, ino: Ino) -> FsIo {
        let mut io = FsIo::default();
        if self.dirty_dirs.contains(&ino) {
            io.add(self.sync_dir(store, ino));
        }
        let bs = self.sb.block_size as u64;
        let Some(inode) = self.inodes.get(&ino) else {
            return io;
        };
        if !inode.dirty {
            return io;
        }
        let p = self.sb.ptrs_per_block();
        // Pointer blocks.
        if let Some(iblk) = inode.indirect {
            let mut ptrs = vec![0u64; p as usize];
            for (j, slot) in ptrs.iter_mut().enumerate() {
                if let Some(Some(pb)) = inode.map.get(NDADDR + j) {
                    *slot = *pb;
                }
            }
            write_ptr_block(store, &self.sb, iblk, &ptrs);
            io.written += bs;
            io.ops += 1;
        }
        if let Some(dblk) = inode.dindirect {
            let mut l1ptrs = vec![0u64; p as usize];
            for (k, l1) in inode.dind_l1.iter().enumerate() {
                let Some(l1blk) = l1 else { continue };
                l1ptrs[k] = *l1blk;
                let mut ptrs = vec![0u64; p as usize];
                let base = NDADDR as u64 + p + k as u64 * p;
                for (j, slot) in ptrs.iter_mut().enumerate() {
                    if let Some(Some(pb)) = inode.map.get(base as usize + j) {
                        *slot = *pb;
                    }
                }
                write_ptr_block(store, &self.sb, *l1blk, &ptrs);
                io.written += bs;
                io.ops += 1;
            }
            write_ptr_block(store, &self.sb, dblk, &l1ptrs);
            io.written += bs;
            io.ops += 1;
        }
        // The inode itself.
        let raw = inode.to_raw();
        store.write(self.sb.inode_offset(ino.0), &raw.encode());
        io.written += INODE_SIZE as u64;
        io.ops += 1;
        self.inodes.get_mut(&ino).unwrap().dirty = false;
        io
    }

    fn sync_dir(&mut self, store: &mut SparseStore, ino: Ino) -> FsIo {
        let mut io = FsIo::default();
        let Some(dir) = self.dirs.get(&ino) else {
            return io;
        };
        let data = dir.encode();
        self.write_direct(store, ino, 0, &data)
            .expect("directory writeback");
        // write_direct marks size; count the traffic.
        io.written += data.len() as u64;
        io.ops += 1;
        self.dirty_dirs.remove(&ino);
        io
    }

    /// Writes back all dirty metadata: bitmap, directories, inodes, freed
    /// inode slots, superblock.
    pub fn sync(&mut self, store: &mut SparseStore) -> FsIo {
        let mut io = FsIo::default();
        let bs = self.sb.block_size as u64;
        let dirty_dirs: Vec<Ino> = self.dirty_dirs.iter().copied().collect();
        for ino in dirty_dirs {
            io.add(self.sync_dir(store, ino));
        }
        let dirty_inos: Vec<Ino> = self
            .inodes
            .values()
            .filter(|i| i.dirty)
            .map(|i| i.ino)
            .collect();
        for ino in dirty_inos {
            io.add(self.sync_inode(store, ino));
        }
        for ino in std::mem::take(&mut self.dead_inodes) {
            store.write(self.sb.inode_offset(ino.0), &RawInode::free().encode());
            io.written += INODE_SIZE as u64;
            io.ops += 1;
        }
        if self.bitmap_dirty {
            store.write(self.sb.bitmap_start * bs, self.bitmap.to_bytes());
            io.written += self.sb.bitmap_blocks * bs;
            io.ops += 1;
            self.bitmap_dirty = false;
        }
        io
    }

    // ----- direct data access (setup & verification only) -------------------

    fn read_file_raw(&self, store: &SparseStore, ino: Ino) -> Vec<u8> {
        let size = self.inodes[&ino].size;
        self.read_direct(store, ino, 0, size as usize)
    }

    /// Reads file data straight from the medium, bypassing cache and
    /// timing. For experiment setup and test verification only.
    pub fn read_direct(&self, store: &SparseStore, ino: Ino, offset: u64, len: usize) -> Vec<u8> {
        let inode = &self.inodes[&ino];
        let bs = self.sb.block_size as u64;
        let len = len.min(inode.size.saturating_sub(offset) as usize);
        let mut out = vec![0u8; len];
        let mut pos = 0usize;
        while pos < len {
            let abs = offset + pos as u64;
            let lblk = abs / bs;
            let boff = (abs % bs) as usize;
            let n = ((bs as usize) - boff).min(len - pos);
            if let Some(pb) = inode.bmap(lblk) {
                store.read(pb * bs + boff as u64, &mut out[pos..pos + n]);
            }
            pos += n;
        }
        out
    }

    /// Writes file data straight to the medium, allocating blocks as
    /// needed and bypassing cache and timing. For experiment setup only.
    pub fn write_direct(
        &mut self,
        store: &mut SparseStore,
        ino: Ino,
        offset: u64,
        data: &[u8],
    ) -> FsResult<()> {
        let bs = self.sb.block_size as u64;
        let mut pos = 0usize;
        while pos < data.len() {
            let abs = offset + pos as u64;
            let lblk = abs / bs;
            let boff = (abs % bs) as usize;
            let n = ((bs as usize) - boff).min(data.len() - pos);
            let existed = self.bmap(ino, lblk).is_some();
            let pb = self.bmap_alloc(ino, lblk)?;
            if !existed && n < bs as usize {
                // A freshly allocated block may be a recycled one with a
                // previous owner's bytes; a partial write must not expose
                // them.
                store.write(pb * bs, &vec![0u8; bs as usize]);
            }
            store.write(pb * bs + boff as u64, &data[pos..pos + n]);
            pos += n;
        }
        let end = offset + data.len() as u64;
        if end > self.inodes[&ino].size {
            self.set_size(ino, end);
        }
        Ok(())
    }
}

fn read_ptr_block(store: &SparseStore, sb: &Superblock, blk: u64) -> Vec<u64> {
    let bs = sb.block_size as u64;
    let bytes = store.read_vec(blk * bs, bs as usize);
    bytes
        .chunks_exact(8)
        .map(|c| u64::from_le_bytes(c.try_into().unwrap()))
        .collect()
}

fn write_ptr_block(store: &mut SparseStore, sb: &Superblock, blk: u64, ptrs: &[u64]) {
    let bs = sb.block_size as u64;
    let mut bytes = Vec::with_capacity(bs as usize);
    for p in ptrs {
        bytes.extend_from_slice(&p.to_le_bytes());
    }
    bytes.resize(bs as usize, 0);
    store.write(blk * bs, &bytes);
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fresh() -> (SparseStore, Fs) {
        let mut store = SparseStore::new(64 * 1024 * 1024);
        let fs = Fs::mkfs(&mut store, 8192, 256);
        (store, fs)
    }

    #[test]
    fn mkfs_mount_roundtrip() {
        let (mut store, mut fs) = fresh();
        fs.create("/hello").unwrap();
        fs.sync(&mut store);
        let (fs2, io) = Fs::mount(&store).expect("mountable");
        assert!(io.read > 0);
        assert!(fs2.lookup("/hello").is_ok());
    }

    #[test]
    fn create_lookup_unlink() {
        let (_store, mut fs) = fresh();
        let ino = fs.create("/a").unwrap();
        assert_eq!(fs.lookup("/a"), Ok(ino));
        assert_eq!(fs.create("/a"), Err(FsError::Exists));
        fs.unlink("/a").unwrap();
        assert_eq!(fs.lookup("/a"), Err(FsError::NotFound));
        assert_eq!(fs.unlink("/a"), Err(FsError::NotFound));
    }

    #[test]
    fn nested_directories() {
        let (_store, mut fs) = fresh();
        fs.mkdir("/d").unwrap();
        fs.mkdir("/d/e").unwrap();
        let f = fs.create("/d/e/file").unwrap();
        assert_eq!(fs.lookup("/d/e/file"), Ok(f));
        assert_eq!(fs.lookup("/d/x/file"), Err(FsError::NotFound));
        assert_eq!(fs.mkdir("/nope/sub"), Err(FsError::NotFound));
        assert_eq!(fs.unlink("/d"), Err(FsError::NotEmpty));
    }

    #[test]
    fn path_validation() {
        let (_store, mut fs) = fresh();
        assert_eq!(fs.create("relative"), Err(FsError::BadName));
        assert_eq!(fs.create("/x/../y"), Err(FsError::BadName));
        assert_eq!(fs.lookup("/"), Ok(Ino(1)));
    }

    #[test]
    fn bmap_alloc_is_contiguous_for_sequential_writes() {
        let (_store, mut fs) = fresh();
        let ino = fs.create("/f").unwrap();
        let a = fs.bmap_alloc(ino, 0).unwrap();
        let b = fs.bmap_alloc(ino, 1).unwrap();
        let c = fs.bmap_alloc(ino, 2).unwrap();
        assert_eq!(b, a + 1);
        assert_eq!(c, b + 1);
        // Idempotent.
        assert_eq!(fs.bmap_alloc(ino, 1).unwrap(), b);
        assert_eq!(fs.bmap(ino, 1), Some(b));
        assert_eq!(fs.bmap(ino, 3), None);
    }

    #[test]
    fn write_read_direct_roundtrip() {
        let (mut store, mut fs) = fresh();
        let ino = fs.create("/f").unwrap();
        let data: Vec<u8> = (0..100_000).map(|i| (i % 253) as u8).collect();
        fs.write_direct(&mut store, ino, 0, &data).unwrap();
        assert_eq!(fs.size(ino), 100_000);
        assert_eq!(fs.read_direct(&store, ino, 0, 100_000), data);
        // Unaligned slice.
        assert_eq!(
            fs.read_direct(&store, ino, 12_345, 4_321),
            data[12_345..12_345 + 4_321].to_vec()
        );
    }

    #[test]
    fn large_file_uses_indirect_blocks_and_survives_remount() {
        let (mut store, mut fs) = fresh();
        let ino = fs.create("/big").unwrap();
        // 20 blocks: past the 12 direct pointers.
        let data: Vec<u8> = (0..20 * 8192).map(|i| (i % 251) as u8).collect();
        fs.write_direct(&mut store, ino, 0, &data).unwrap();
        fs.sync(&mut store);
        let (fs2, _) = Fs::mount(&store).unwrap();
        let ino2 = fs2.lookup("/big").unwrap();
        assert_eq!(fs2.read_direct(&store, ino2, 0, data.len()), data);
    }

    #[test]
    fn double_indirect_file_survives_remount() {
        let (mut store, mut fs) = fresh();
        let ino = fs.create("/huge").unwrap();
        let p = fs.superblock().ptrs_per_block();
        // A couple of blocks past the single-indirect limit, written
        // sparsely to keep the test fast.
        let lblk = NDADDR as u64 + p + 3;
        let pb = fs.bmap_alloc(ino, lblk).unwrap();
        let bs = fs.block_size() as u64;
        store.write(pb * bs, b"deep block");
        fs.set_size(ino, (lblk + 1) * bs);
        fs.sync(&mut store);
        let (fs2, _) = Fs::mount(&store).unwrap();
        let ino2 = fs2.lookup("/huge").unwrap();
        assert_eq!(fs2.bmap(ino2, lblk), Some(pb));
        let got = fs2.read_direct(&store, ino2, lblk * bs, 10);
        assert_eq!(&got, b"deep block");
    }

    #[test]
    fn holes_read_as_zeros() {
        let (mut store, mut fs) = fresh();
        let ino = fs.create("/sparse").unwrap();
        fs.write_direct(&mut store, ino, 3 * 8192, b"tail").unwrap();
        let hole = fs.read_direct(&store, ino, 0, 16);
        assert_eq!(hole, vec![0u8; 16]);
    }

    #[test]
    fn truncate_frees_blocks() {
        let (mut store, mut fs) = fresh();
        let free0 = fs.free_blocks();
        let ino = fs.create("/f").unwrap();
        fs.write_direct(&mut store, ino, 0, &vec![1u8; 20 * 8192])
            .unwrap();
        assert!(fs.free_blocks() < free0);
        fs.truncate(ino).unwrap();
        assert_eq!(fs.free_blocks(), free0);
        assert_eq!(fs.size(ino), 0);
    }

    #[test]
    fn unlink_frees_blocks_and_inode_slot() {
        let (mut store, mut fs) = fresh();
        let free0 = fs.free_blocks();
        let ino = fs.create("/f").unwrap();
        fs.write_direct(&mut store, ino, 0, &vec![1u8; 5 * 8192])
            .unwrap();
        fs.unlink("/f").unwrap();
        assert_eq!(fs.free_blocks(), free0);
        fs.sync(&mut store);
        let (fs2, _) = Fs::mount(&store).unwrap();
        assert_eq!(fs2.lookup("/f"), Err(FsError::NotFound));
        // The inode slot is reusable.
        let ino2 = fs2.stat(ino);
        assert!(ino2.is_none());
    }

    #[test]
    fn block_map_snapshot_matches_bmap() {
        let (mut store, mut fs) = fresh();
        let ino = fs.create("/f").unwrap();
        fs.write_direct(&mut store, ino, 0, &vec![7u8; 5 * 8192 + 100])
            .unwrap();
        let map = fs.block_map(ino);
        assert_eq!(map.len(), 6);
        for (l, pb) in map.iter().enumerate() {
            assert_eq!(*pb, fs.bmap(ino, l as u64));
            assert!(pb.is_some());
        }
    }

    #[test]
    fn hard_links_share_the_inode_until_the_last_name_goes() {
        let (mut store, mut fs) = fresh();
        let ino = fs.create("/a").unwrap();
        fs.write_direct(&mut store, ino, 0, b"shared").unwrap();
        fs.link("/a", "/b").unwrap();
        assert_eq!(fs.lookup("/b"), Ok(ino));
        assert_eq!(fs.link("/a", "/b"), Err(FsError::Exists));
        assert_eq!(fs.link("/", "/c"), Err(FsError::IsDir));
        // Writes through one name are visible through the other.
        fs.write_direct(&mut store, ino, 0, b"SHARED").unwrap();
        let ino_b = fs.lookup("/b").unwrap();
        assert_eq!(fs.read_direct(&store, ino_b, 0, 6), b"SHARED");
        // Dropping one name keeps the file.
        let free_before = fs.free_blocks();
        fs.unlink("/a").unwrap();
        assert_eq!(fs.lookup("/a"), Err(FsError::NotFound));
        assert_eq!(fs.lookup("/b"), Ok(ino));
        assert_eq!(fs.free_blocks(), free_before, "blocks survive");
        // Dropping the last name frees everything.
        fs.unlink("/b").unwrap();
        assert!(fs.free_blocks() > free_before);
        // And the image stays consistent across a remount.
        fs.sync(&mut store);
        let (fs2, _) = Fs::mount(&store).unwrap();
        assert_eq!(fs2.lookup("/b"), Err(FsError::NotFound));
    }

    #[test]
    fn linked_file_survives_remount_with_both_names() {
        let (mut store, mut fs) = fresh();
        let ino = fs.create("/x").unwrap();
        fs.write_direct(&mut store, ino, 0, b"data").unwrap();
        fs.link("/x", "/y").unwrap();
        fs.sync(&mut store);
        assert!(crate::fsck::fsck(&store).clean());
        let (fs2, _) = Fs::mount(&store).unwrap();
        assert_eq!(fs2.lookup("/x"), fs2.lookup("/y"));
    }

    #[test]
    fn no_space_surfaces() {
        let mut store = SparseStore::new(1024 * 1024); // 128 blocks total
        let mut fs = Fs::mkfs(&mut store, 8192, 16);
        let ino = fs.create("/f").unwrap();
        let mut err = None;
        for l in 0..200 {
            if let Err(e) = fs.bmap_alloc(ino, l) {
                err = Some(e);
                break;
            }
        }
        assert_eq!(err, Some(FsError::NoSpace));
    }

    #[test]
    fn file_too_big_surfaces() {
        let (_store, mut fs) = fresh();
        let ino = fs.create("/f").unwrap();
        let max = fs.superblock().max_file_blocks();
        assert_eq!(fs.bmap_alloc(ino, max), Err(FsError::FileTooBig));
    }
}
