//! `fsck`-style consistency checker.
//!
//! Reads the raw on-disk structures back — independently of the `Fs`
//! implementation — and cross-checks them. This is the oracle behind the
//! filesystem property tests: after any sequence of operations plus a
//! `sync`, the image must check clean.

use std::collections::{HashMap, HashSet, VecDeque};

use khw::SparseStore;

use crate::dir::DirContents;
use crate::inode::{FileKind, Ino};
use crate::layout::{RawInode, Superblock, INODE_SIZE, NDADDR};

/// Outcome of a check: inventory plus any inconsistencies found.
#[derive(Debug, Default)]
pub struct FsckReport {
    /// Regular files found.
    pub files: u32,
    /// Directories found.
    pub dirs: u32,
    /// Data blocks referenced by files (including pointer blocks).
    pub referenced_blocks: u64,
    /// Problems found; empty means the image is consistent.
    pub errors: Vec<String>,
}

impl FsckReport {
    /// True when no inconsistencies were found.
    pub fn clean(&self) -> bool {
        self.errors.is_empty()
    }
}

fn read_ptrs(store: &SparseStore, sb: &Superblock, blk: u64) -> Vec<u64> {
    let bs = sb.block_size as u64;
    store
        .read_vec(blk * bs, bs as usize)
        .chunks_exact(8)
        .map(|c| u64::from_le_bytes(c.try_into().unwrap()))
        .collect()
}

/// Checks the filesystem image in `store`.
pub fn fsck(store: &SparseStore) -> FsckReport {
    let mut rep = FsckReport::default();
    let Some(sb) = Superblock::decode(&store.read_vec(0, 64)) else {
        rep.errors.push("bad superblock magic".into());
        return rep;
    };
    let bs = sb.block_size as u64;

    let mut refs: HashMap<u64, String> = HashMap::new();
    let mut claim = |rep: &mut FsckReport, blk: u64, what: String| {
        if blk < sb.data_start || blk >= sb.total_blocks {
            rep.errors
                .push(format!("{what}: block {blk} out of data range"));
            return;
        }
        if let Some(prev) = refs.insert(blk, what.clone()) {
            rep.errors
                .push(format!("block {blk} doubly referenced: {prev} and {what}"));
        }
    };

    // Pass 1: inodes and their block trees.
    let mut kinds: HashMap<Ino, FileKind> = HashMap::new();
    let mut sizes: HashMap<Ino, u64> = HashMap::new();
    let mut nlinks: HashMap<Ino, u16> = HashMap::new();
    for i in 1..sb.ninodes {
        let raw = RawInode::decode(&store.read_vec(sb.inode_offset(i), INODE_SIZE));
        let Some(kind) = FileKind::from_raw(raw.kind) else {
            if raw.kind != 0 {
                rep.errors.push(format!("inode {i}: bad kind {}", raw.kind));
            }
            continue;
        };
        let ino = Ino(i);
        kinds.insert(ino, kind);
        sizes.insert(ino, raw.size);
        nlinks.insert(ino, raw.nlink);
        match kind {
            FileKind::File => rep.files += 1,
            FileKind::Dir => rep.dirs += 1,
        }

        let mut mapped_blocks = 0u64;
        for &d in raw.direct.iter().filter(|&&d| d != 0) {
            claim(&mut rep, d, format!("inode {i} direct"));
            mapped_blocks += 1;
        }
        if raw.indirect != 0 {
            claim(&mut rep, raw.indirect, format!("inode {i} indirect"));
            for &pb in read_ptrs(store, &sb, raw.indirect)
                .iter()
                .filter(|&&b| b != 0)
            {
                claim(&mut rep, pb, format!("inode {i} ind data"));
                mapped_blocks += 1;
            }
        }
        if raw.dindirect != 0 {
            claim(&mut rep, raw.dindirect, format!("inode {i} dindirect"));
            for &l1 in read_ptrs(store, &sb, raw.dindirect)
                .iter()
                .filter(|&&b| b != 0)
            {
                claim(&mut rep, l1, format!("inode {i} dind l1"));
                for &pb in read_ptrs(store, &sb, l1).iter().filter(|&&b| b != 0) {
                    claim(&mut rep, pb, format!("inode {i} dind data"));
                    mapped_blocks += 1;
                }
            }
        }
        // Size sanity: a file cannot be larger than the address space, and
        // cannot have data blocks entirely past its size (trailing holes
        // are fine, trailing *blocks* are a leak).
        let max_bytes = sb.max_file_blocks() * bs;
        if raw.size > max_bytes {
            rep.errors
                .push(format!("inode {i}: size {} too large", raw.size));
        }
        let size_blocks = raw.size.div_ceil(bs);
        if mapped_blocks > size_blocks {
            rep.errors.push(format!(
                "inode {i}: {mapped_blocks} blocks mapped but size covers {size_blocks}"
            ));
        }
    }
    rep.referenced_blocks = refs.len() as u64;

    // Pass 2: bitmap agreement.
    let bitmap = store.read_vec(sb.bitmap_start * bs, (sb.bitmap_blocks * bs) as usize);
    let used = |blk: u64| bitmap[(blk / 8) as usize] & (1 << (blk % 8)) != 0;
    for b in 0..sb.data_start {
        if !used(b) {
            rep.errors
                .push(format!("metadata block {b} not marked used"));
        }
    }
    for (&blk, what) in &refs {
        if !used(blk) {
            rep.errors
                .push(format!("referenced block {blk} ({what}) marked free"));
        }
    }
    for b in sb.data_start..sb.total_blocks {
        if used(b) && !refs.contains_key(&b) {
            rep.errors
                .push(format!("block {b} marked used but unreferenced"));
        }
    }

    // Pass 3: namespace reachability and link counts.
    let root = Ino(sb.root_ino);
    if kinds.get(&root) != Some(&FileKind::Dir) {
        rep.errors.push("root inode is not a directory".into());
        return rep;
    }
    let mut reachable: HashSet<Ino> = HashSet::new();
    let mut dir_refs: HashMap<Ino, u16> = HashMap::new();
    let mut queue = VecDeque::from([root]);
    reachable.insert(root);
    while let Some(d) = queue.pop_front() {
        // Read directory data via its raw block tree.
        let raw = RawInode::decode(&store.read_vec(sb.inode_offset(d.0), INODE_SIZE));
        let mut data = Vec::with_capacity(raw.size as usize);
        let mut lblk = 0u64;
        while (lblk * bs) < raw.size {
            let pb = if (lblk as usize) < NDADDR {
                raw.direct[lblk as usize]
            } else if raw.indirect != 0 {
                read_ptrs(store, &sb, raw.indirect)
                    .get(lblk as usize - NDADDR)
                    .copied()
                    .unwrap_or(0)
            } else {
                0
            };
            let want = ((raw.size - lblk * bs) as usize).min(bs as usize);
            if pb != 0 {
                data.extend_from_slice(&store.read_vec(pb * bs, want));
            } else {
                data.extend(std::iter::repeat_n(0, want));
            }
            lblk += 1;
        }
        let Some(contents) = DirContents::decode(&data) else {
            rep.errors.push(format!("directory {} unparseable", d.0));
            continue;
        };
        for (name, ino) in contents.iter() {
            let Some(kind) = kinds.get(&ino) else {
                rep.errors.push(format!(
                    "dir {} entry '{name}' -> free inode {}",
                    d.0, ino.0
                ));
                continue;
            };
            *dir_refs.entry(ino).or_insert(0) += 1;
            if reachable.insert(ino) {
                if *kind == FileKind::Dir {
                    queue.push_back(ino);
                }
            } else if *kind == FileKind::Dir {
                rep.errors
                    .push(format!("directory {} referenced more than once", ino.0));
            }
        }
    }
    for (&ino, &kind) in &kinds {
        if !reachable.contains(&ino) {
            rep.errors.push(format!("inode {} unreachable", ino.0));
        }
        if kind == FileKind::File {
            let refs = dir_refs.get(&ino).copied().unwrap_or(0);
            let nlink = nlinks[&ino];
            if refs != nlink {
                rep.errors.push(format!(
                    "inode {}: nlink {nlink} but {refs} directory references",
                    ino.0
                ));
            }
        }
    }

    rep
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fs::Fs;

    fn image() -> (SparseStore, Fs) {
        let mut store = SparseStore::new(32 * 1024 * 1024);
        let fs = Fs::mkfs(&mut store, 8192, 128);
        (store, fs)
    }

    #[test]
    fn fresh_image_checks_clean() {
        let (mut store, mut fs) = image();
        fs.sync(&mut store);
        let rep = fsck(&store);
        assert!(rep.clean(), "{:?}", rep.errors);
        assert_eq!(rep.dirs, 1);
        assert_eq!(rep.files, 0);
    }

    #[test]
    fn populated_image_checks_clean() {
        let (mut store, mut fs) = image();
        fs.mkdir("/d").unwrap();
        for name in ["/a", "/d/b", "/d/c"] {
            let ino = fs.create(name).unwrap();
            fs.write_direct(&mut store, ino, 0, &vec![3u8; 30_000])
                .unwrap();
        }
        let ino = fs.create("/big").unwrap();
        fs.write_direct(&mut store, ino, 0, &vec![4u8; 20 * 8192])
            .unwrap();
        fs.unlink("/d/c").unwrap();
        fs.sync(&mut store);
        let rep = fsck(&store);
        assert!(rep.clean(), "{:?}", rep.errors);
        assert_eq!(rep.files, 3);
        assert_eq!(rep.dirs, 2);
    }

    #[test]
    fn detects_double_reference() {
        let (mut store, mut fs) = image();
        let a = fs.create("/a").unwrap();
        let b = fs.create("/b").unwrap();
        fs.write_direct(&mut store, a, 0, &vec![1u8; 8192]).unwrap();
        fs.write_direct(&mut store, b, 0, &vec![2u8; 8192]).unwrap();
        fs.sync(&mut store);
        // Corrupt: point b's first direct block at a's.
        let sb = *fs.superblock();
        let mut raw_b = RawInode::decode(&store.read_vec(sb.inode_offset(b.0), INODE_SIZE));
        let raw_a = RawInode::decode(&store.read_vec(sb.inode_offset(a.0), INODE_SIZE));
        raw_b.direct[0] = raw_a.direct[0];
        store.write(sb.inode_offset(b.0), &raw_b.encode());
        let rep = fsck(&store);
        assert!(rep.errors.iter().any(|e| e.contains("doubly referenced")));
    }

    #[test]
    fn detects_free_block_in_use() {
        let (mut store, mut fs) = image();
        let a = fs.create("/a").unwrap();
        fs.write_direct(&mut store, a, 0, &vec![1u8; 8192]).unwrap();
        fs.sync(&mut store);
        // Corrupt: clear the data block's bitmap bit.
        let sb = *fs.superblock();
        let raw = RawInode::decode(&store.read_vec(sb.inode_offset(a.0), INODE_SIZE));
        let blk = raw.direct[0];
        let bs = sb.block_size as u64;
        let byte_off = sb.bitmap_start * bs + blk / 8;
        let mut byte = store.read_vec(byte_off, 1);
        byte[0] &= !(1 << (blk % 8));
        store.write(byte_off, &byte);
        let rep = fsck(&store);
        assert!(rep.errors.iter().any(|e| e.contains("marked free")));
    }

    #[test]
    fn detects_leaked_block() {
        let (mut store, mut fs) = image();
        fs.sync(&mut store);
        let sb = *fs.superblock();
        let bs = sb.block_size as u64;
        // Corrupt: set a random data block's bit with no referent.
        let blk = sb.data_start + 5;
        let byte_off = sb.bitmap_start * bs + blk / 8;
        let mut byte = store.read_vec(byte_off, 1);
        byte[0] |= 1 << (blk % 8);
        store.write(byte_off, &byte);
        let rep = fsck(&store);
        assert!(rep.errors.iter().any(|e| e.contains("unreferenced")));
    }

    #[test]
    fn detects_dangling_dirent() {
        let (mut store, mut fs) = image();
        let a = fs.create("/ghost").unwrap();
        fs.sync(&mut store);
        // Corrupt: free the inode but leave the directory entry.
        let sb = *fs.superblock();
        store.write(sb.inode_offset(a.0), &RawInode::free().encode());
        let rep = fsck(&store);
        assert!(rep.errors.iter().any(|e| e.contains("free inode")));
    }

    #[test]
    fn detects_bad_superblock() {
        let store = SparseStore::new(1024 * 1024);
        let rep = fsck(&store);
        assert!(!rep.clean());
    }
}
