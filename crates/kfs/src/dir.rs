//! Directory content encoding.
//!
//! A directory's data is a packed sequence of entries, each
//! `ino: u32, namelen: u16, name: [u8]`, terminated by a zero record.
//! In core a directory is a sorted name → inode map; it is serialised into
//! the directory file's data blocks at sync time.

use std::collections::BTreeMap;

use crate::inode::Ino;

/// In-core directory contents.
#[derive(Clone, Default, Debug, PartialEq, Eq)]
pub struct DirContents {
    entries: BTreeMap<String, Ino>,
}

impl DirContents {
    /// An empty directory.
    pub fn new() -> DirContents {
        DirContents::default()
    }

    /// Looks up `name`.
    pub fn get(&self, name: &str) -> Option<Ino> {
        self.entries.get(name).copied()
    }

    /// Adds an entry. Returns `false` (and changes nothing) if the name
    /// already exists.
    pub fn insert(&mut self, name: &str, ino: Ino) -> bool {
        if self.entries.contains_key(name) {
            return false;
        }
        self.entries.insert(name.to_string(), ino);
        true
    }

    /// Removes an entry, returning its inode.
    pub fn remove(&mut self, name: &str) -> Option<Ino> {
        self.entries.remove(name)
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when the directory has no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Iterates entries in name order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, Ino)> + '_ {
        self.entries.iter().map(|(n, i)| (n.as_str(), *i))
    }

    /// Serialises to the on-disk format (including the terminator).
    pub fn encode(&self) -> Vec<u8> {
        let mut v = Vec::new();
        for (name, ino) in &self.entries {
            assert!(name.len() <= u16::MAX as usize);
            v.extend_from_slice(&ino.0.to_le_bytes());
            v.extend_from_slice(&(name.len() as u16).to_le_bytes());
            v.extend_from_slice(name.as_bytes());
        }
        v.extend_from_slice(&0u32.to_le_bytes());
        v.extend_from_slice(&0u16.to_le_bytes());
        v
    }

    /// Parses the on-disk format. Garbage past the terminator is ignored.
    /// Returns `None` on a malformed record.
    pub fn decode(b: &[u8]) -> Option<DirContents> {
        let mut entries = BTreeMap::new();
        let mut off = 0usize;
        loop {
            if off + 6 > b.len() {
                return None;
            }
            let ino = u32::from_le_bytes(b[off..off + 4].try_into().unwrap());
            let namelen = u16::from_le_bytes(b[off + 4..off + 6].try_into().unwrap()) as usize;
            off += 6;
            if ino == 0 && namelen == 0 {
                return Some(DirContents { entries });
            }
            if ino == 0 || off + namelen > b.len() {
                return None;
            }
            let name = std::str::from_utf8(&b[off..off + namelen]).ok()?;
            entries.insert(name.to_string(), Ino(ino));
            off += namelen;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_lookup_remove() {
        let mut d = DirContents::new();
        assert!(d.insert("movie.audio", Ino(2)));
        assert!(d.insert("movie.video", Ino(3)));
        assert!(!d.insert("movie.audio", Ino(4)), "duplicate rejected");
        assert_eq!(d.get("movie.audio"), Some(Ino(2)));
        assert_eq!(d.remove("movie.audio"), Some(Ino(2)));
        assert_eq!(d.get("movie.audio"), None);
        assert_eq!(d.len(), 1);
    }

    #[test]
    fn encode_decode_roundtrip() {
        let mut d = DirContents::new();
        d.insert("a", Ino(1));
        d.insert("long-file-name.dat", Ino(42));
        d.insert("z", Ino(7));
        let enc = d.encode();
        let d2 = DirContents::decode(&enc).unwrap();
        assert_eq!(d, d2);
    }

    #[test]
    fn decode_ignores_padding() {
        let mut d = DirContents::new();
        d.insert("x", Ino(5));
        let mut enc = d.encode();
        enc.extend_from_slice(&[0xAA; 100]); // block padding / stale bytes
        assert_eq!(DirContents::decode(&enc).unwrap(), d);
    }

    #[test]
    fn decode_rejects_truncation() {
        let mut d = DirContents::new();
        d.insert("filename", Ino(5));
        let enc = d.encode();
        assert!(DirContents::decode(&enc[..enc.len() - 8]).is_none());
    }

    #[test]
    fn empty_roundtrip() {
        let d = DirContents::new();
        assert_eq!(DirContents::decode(&d.encode()).unwrap(), d);
    }
}
