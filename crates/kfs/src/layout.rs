//! On-disk layout: superblock and raw inode encoding.

/// Filesystem magic number ("SPLC" + version).
pub const MAGIC: u32 = 0x53504c01;

/// Direct block pointers per inode (classic FFS `NDADDR`).
pub const NDADDR: usize = 12;

/// Bytes per on-disk inode slot.
pub const INODE_SIZE: usize = 128;

/// The superblock: geometry of the filesystem.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Superblock {
    /// Must equal [`MAGIC`].
    pub magic: u32,
    /// Filesystem block size in bytes (power of two, ≥ 512).
    pub block_size: u32,
    /// Total filesystem blocks on the device.
    pub total_blocks: u64,
    /// Number of inode slots.
    pub ninodes: u32,
    /// First block of the inode table.
    pub itab_start: u64,
    /// Blocks occupied by the inode table.
    pub itab_blocks: u64,
    /// First block of the free bitmap.
    pub bitmap_start: u64,
    /// Blocks occupied by the bitmap.
    pub bitmap_blocks: u64,
    /// First data block.
    pub data_start: u64,
    /// Root directory inode.
    pub root_ino: u32,
}

impl Superblock {
    /// Computes a layout for a device of `dev_bytes` with the given block
    /// size and inode count.
    ///
    /// # Panics
    ///
    /// Panics on degenerate geometry (zero-size device, non-power-of-two
    /// block size, not enough room for metadata plus at least one data
    /// block).
    pub fn for_device(dev_bytes: u64, block_size: u32, ninodes: u32) -> Superblock {
        assert!(block_size.is_power_of_two() && block_size >= 512);
        assert!(ninodes >= 2, "need at least root + one file");
        let total_blocks = dev_bytes / block_size as u64;
        let itab_start = 1u64;
        let itab_bytes = ninodes as u64 * INODE_SIZE as u64;
        let itab_blocks = itab_bytes.div_ceil(block_size as u64);
        let bitmap_start = itab_start + itab_blocks;
        let bitmap_blocks = total_blocks.div_ceil(8 * block_size as u64);
        let data_start = bitmap_start + bitmap_blocks;
        assert!(
            data_start + 1 < total_blocks,
            "device too small for layout: {total_blocks} blocks"
        );
        Superblock {
            magic: MAGIC,
            block_size,
            total_blocks,
            ninodes,
            itab_start,
            itab_blocks,
            bitmap_start,
            bitmap_blocks,
            data_start,
            root_ino: 1,
        }
    }

    /// Pointers per indirect block.
    pub fn ptrs_per_block(&self) -> u64 {
        self.block_size as u64 / 8
    }

    /// Largest addressable logical block index + 1 (direct + single +
    /// double indirect coverage).
    pub fn max_file_blocks(&self) -> u64 {
        let p = self.ptrs_per_block();
        NDADDR as u64 + p + p * p
    }

    /// Serialises to bytes (fits easily in one block).
    pub fn encode(&self) -> Vec<u8> {
        let mut v = Vec::with_capacity(64);
        v.extend_from_slice(&self.magic.to_le_bytes());
        v.extend_from_slice(&self.block_size.to_le_bytes());
        v.extend_from_slice(&self.total_blocks.to_le_bytes());
        v.extend_from_slice(&self.ninodes.to_le_bytes());
        v.extend_from_slice(&self.itab_start.to_le_bytes());
        v.extend_from_slice(&self.itab_blocks.to_le_bytes());
        v.extend_from_slice(&self.bitmap_start.to_le_bytes());
        v.extend_from_slice(&self.bitmap_blocks.to_le_bytes());
        v.extend_from_slice(&self.data_start.to_le_bytes());
        v.extend_from_slice(&self.root_ino.to_le_bytes());
        v
    }

    /// Parses a superblock; `None` if the magic does not match.
    pub fn decode(b: &[u8]) -> Option<Superblock> {
        if b.len() < 64 {
            return None;
        }
        let rd32 = |o: usize| u32::from_le_bytes(b[o..o + 4].try_into().unwrap());
        let rd64 = |o: usize| u64::from_le_bytes(b[o..o + 8].try_into().unwrap());
        let sb = Superblock {
            magic: rd32(0),
            block_size: rd32(4),
            total_blocks: rd64(8),
            ninodes: rd32(16),
            itab_start: rd64(20),
            itab_blocks: rd64(28),
            bitmap_start: rd64(36),
            bitmap_blocks: rd64(44),
            data_start: rd64(52),
            root_ino: rd32(60),
        };
        (sb.magic == MAGIC).then_some(sb)
    }

    /// Byte offset of inode slot `ino` on the device.
    pub fn inode_offset(&self, ino: u32) -> u64 {
        assert!(ino < self.ninodes, "inode {ino} out of range");
        self.itab_start * self.block_size as u64 + ino as u64 * INODE_SIZE as u64
    }
}

/// Raw on-disk inode image.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct RawInode {
    /// 0 = free, 1 = regular file, 2 = directory.
    pub kind: u16,
    /// Hard link count.
    pub nlink: u16,
    /// File size in bytes.
    pub size: u64,
    /// Direct block pointers (0 = hole).
    pub direct: [u64; NDADDR],
    /// Single-indirect pointer block (0 = none).
    pub indirect: u64,
    /// Double-indirect pointer block (0 = none).
    pub dindirect: u64,
}

impl RawInode {
    /// An all-zero (free) inode.
    pub fn free() -> RawInode {
        RawInode {
            kind: 0,
            nlink: 0,
            size: 0,
            direct: [0; NDADDR],
            indirect: 0,
            dindirect: 0,
        }
    }

    /// Serialises to exactly [`INODE_SIZE`] bytes.
    pub fn encode(&self) -> [u8; INODE_SIZE] {
        let mut v = [0u8; INODE_SIZE];
        v[0..2].copy_from_slice(&self.kind.to_le_bytes());
        v[2..4].copy_from_slice(&self.nlink.to_le_bytes());
        v[4..12].copy_from_slice(&self.size.to_le_bytes());
        for (i, d) in self.direct.iter().enumerate() {
            let o = 12 + i * 8;
            v[o..o + 8].copy_from_slice(&d.to_le_bytes());
        }
        v[108..116].copy_from_slice(&self.indirect.to_le_bytes());
        v[116..124].copy_from_slice(&self.dindirect.to_le_bytes());
        v
    }

    /// Parses an inode image.
    pub fn decode(b: &[u8]) -> RawInode {
        assert!(b.len() >= INODE_SIZE);
        let rd64 = |o: usize| u64::from_le_bytes(b[o..o + 8].try_into().unwrap());
        let mut direct = [0u64; NDADDR];
        for (i, d) in direct.iter_mut().enumerate() {
            *d = rd64(12 + i * 8);
        }
        RawInode {
            kind: u16::from_le_bytes(b[0..2].try_into().unwrap()),
            nlink: u16::from_le_bytes(b[2..4].try_into().unwrap()),
            size: rd64(4),
            direct,
            indirect: rd64(108),
            dindirect: rd64(116),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn superblock_roundtrip() {
        let sb = Superblock::for_device(16 * 1024 * 1024, 8192, 512);
        let decoded = Superblock::decode(&sb.encode()).unwrap();
        assert_eq!(sb, decoded);
    }

    #[test]
    fn superblock_bad_magic_rejected() {
        let sb = Superblock::for_device(16 * 1024 * 1024, 8192, 512);
        let mut enc = sb.encode();
        enc[0] ^= 0xff;
        assert!(Superblock::decode(&enc).is_none());
    }

    #[test]
    fn layout_regions_are_disjoint_and_ordered() {
        let sb = Superblock::for_device(64 * 1024 * 1024, 8192, 1024);
        assert!(sb.itab_start >= 1);
        assert_eq!(sb.bitmap_start, sb.itab_start + sb.itab_blocks);
        assert_eq!(sb.data_start, sb.bitmap_start + sb.bitmap_blocks);
        assert!(sb.data_start < sb.total_blocks);
    }

    #[test]
    fn max_file_blocks_covers_double_indirect() {
        let sb = Superblock::for_device(64 * 1024 * 1024, 8192, 64);
        let p = 8192u64 / 8;
        assert_eq!(sb.max_file_blocks(), 12 + p + p * p);
    }

    #[test]
    fn inode_roundtrip() {
        let mut raw = RawInode::free();
        raw.kind = 1;
        raw.nlink = 1;
        raw.size = 123456;
        raw.direct[0] = 77;
        raw.direct[11] = 88;
        raw.indirect = 99;
        raw.dindirect = 100;
        assert_eq!(RawInode::decode(&raw.encode()), raw);
    }

    #[test]
    fn inode_offsets_do_not_overlap() {
        let sb = Superblock::for_device(16 * 1024 * 1024, 8192, 512);
        let a = sb.inode_offset(0);
        let b = sb.inode_offset(1);
        assert_eq!(b - a, INODE_SIZE as u64);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn inode_offset_bounds_checked() {
        let sb = Superblock::for_device(16 * 1024 * 1024, 8192, 512);
        sb.inode_offset(512);
    }

    #[test]
    #[should_panic(expected = "too small")]
    fn tiny_device_rejected() {
        Superblock::for_device(8192 * 3, 8192, 128);
    }
}
