//! Property tests: the filesystem against a flat reference model, with
//! `fsck` and remount as oracles after every generated operation
//! sequence.

// Compiled only with `cargo test --features props` (hermetic default
// builds skip the property suites).
#![cfg(feature = "props")]

use std::collections::HashMap;

use proptest::prelude::*;

use kfs::{fsck, Fs, FsError};
use khw::SparseStore;

#[derive(Clone, Debug)]
enum Op {
    Create(u8),
    Unlink(u8),
    Write { name: u8, off: u16, len: u16 },
    Truncate(u8),
    Mkdir(u8),
}

fn op() -> impl Strategy<Value = Op> {
    prop_oneof![
        3 => (0u8..12).prop_map(Op::Create),
        1 => (0u8..12).prop_map(Op::Unlink),
        4 => ((0u8..12), any::<u16>(), (1u16..20_000)).prop_map(|(name, off, len)| Op::Write {
            name,
            off,
            len
        }),
        1 => (0u8..12).prop_map(Op::Truncate),
        1 => (12u8..16).prop_map(Op::Mkdir),
    ]
}

fn name_of(n: u8) -> String {
    format!("/f{n}")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn random_ops_match_model_and_fsck_clean(ops in prop::collection::vec(op(), 1..60)) {
        let mut store = SparseStore::new(24 * 1024 * 1024);
        let mut fs = Fs::mkfs(&mut store, 8192, 64);
        // Reference model: path → contents.
        let mut model: HashMap<String, Vec<u8>> = HashMap::new();

        for (i, op) in ops.iter().enumerate() {
            match op {
                Op::Create(n) => {
                    let path = name_of(*n);
                    let res = fs.create(&path);
                    if let std::collections::hash_map::Entry::Vacant(slot) = model.entry(path) {
                        if res.is_ok() {
                            slot.insert(Vec::new());
                        }
                    } else {
                        prop_assert_eq!(res.err(), Some(FsError::Exists));
                    }
                    // (NoSpace on inode exhaustion is legal and leaves the
                    // model untouched.)
                }
                Op::Unlink(n) => {
                    let path = name_of(*n);
                    let res = fs.unlink(&path);
                    if model.remove(&path).is_some() {
                        prop_assert!(res.is_ok(), "unlink of existing file failed at op {}", i);
                    } else {
                        prop_assert!(res.is_err());
                    }
                }
                Op::Write { name, off, len } => {
                    let path = name_of(*name);
                    if let Some(contents) = model.get_mut(&path) {
                        let ino = fs.lookup(&path).unwrap();
                        let data: Vec<u8> =
                            (0..*len).map(|j| (j as u64 * 31 + *off as u64) as u8).collect();
                        match fs.write_direct(&mut store, ino, *off as u64, &data) {
                            Ok(()) => {
                                let end = *off as usize + data.len();
                                if contents.len() < end {
                                    contents.resize(end, 0);
                                }
                                contents[*off as usize..end].copy_from_slice(&data);
                            }
                            Err(FsError::NoSpace) => {
                                // Partial allocation is possible; resync the
                                // model from the filesystem (the oracle for
                                // sizes is fsck + remount below).
                                let size = fs.size(ino) as usize;
                                let data = fs.read_direct(&store, ino, 0, size);
                                *contents = data;
                            }
                            Err(e) => prop_assert!(false, "write failed: {:?}", e),
                        }
                    }
                }
                Op::Truncate(n) => {
                    let path = name_of(*n);
                    if model.contains_key(&path) {
                        let ino = fs.lookup(&path).unwrap();
                        fs.truncate(ino).unwrap();
                        fs.set_size(ino, 0);
                        model.insert(path, Vec::new());
                    }
                }
                Op::Mkdir(n) => {
                    let _ = fs.mkdir(&format!("/d{n}"));
                }
            }
        }

        // Contents agree with the model.
        for (path, contents) in &model {
            let ino = fs.lookup(path).unwrap();
            prop_assert_eq!(fs.size(ino), contents.len() as u64, "size of {}", path);
            let got = fs.read_direct(&store, ino, 0, contents.len());
            prop_assert_eq!(&got, contents, "contents of {}", path);
        }

        // On-disk image checks clean after sync…
        fs.sync(&mut store);
        let rep = fsck(&store);
        prop_assert!(rep.clean(), "fsck: {:?}", rep.errors);

        // …and a fresh mount sees the same world.
        let (fs2, _) = Fs::mount(&store).expect("remountable");
        for (path, contents) in &model {
            let ino = fs2.lookup(path).unwrap();
            let got = fs2.read_direct(&store, ino, 0, contents.len());
            prop_assert_eq!(&got, contents, "post-remount contents of {}", path);
        }
    }

    #[test]
    fn sparse_writes_roundtrip(
        writes in prop::collection::vec((0u32..2_000_000, 1u16..5_000), 1..12)
    ) {
        let mut store = SparseStore::new(24 * 1024 * 1024);
        let mut fs = Fs::mkfs(&mut store, 8192, 16);
        let ino = fs.create("/sparse").unwrap();
        let mut model = Vec::new();
        for (off, len) in &writes {
            let data: Vec<u8> = (0..*len).map(|j| (j as u32 ^ off) as u8).collect();
            if fs.write_direct(&mut store, ino, *off as u64, &data).is_err() {
                // Out of space: fine, stop here.
                break;
            }
            let end = *off as usize + data.len();
            if model.len() < end {
                model.resize(end, 0);
            }
            model[*off as usize..end].copy_from_slice(&data);
        }
        let got = fs.read_direct(&store, ino, 0, model.len());
        prop_assert_eq!(got, model);
        fs.sync(&mut store);
        prop_assert!(fsck(&store).clean());
    }
}
